//! Crash-safe write-ahead journal for `splitd`.
//!
//! The journal makes admitted work durable: every request that passes
//! admission control is appended as a checksummed, length-prefixed
//! *admitted* record **before** it enters the job queue, and a matching
//! *completed* record is appended once its reply has been handed to the
//! connection's delivery stream. On startup, [`Journal::open`] scans the
//! file, truncates a torn final record (the only damage a `kill -9`
//! mid-append can cause), and returns every admitted-but-not-completed
//! job in original admission order so the server can re-enqueue it —
//! a crash loses zero admitted work.
//!
//! Exactly-once semantics come for free from determinism: every solver
//! in the workspace is a pure function of `(problem, instance, seed)`
//! (pinned byte-identical by the conformance corpus), so re-solving a
//! recovered request provably reproduces the byte-identical solution.
//! The idempotency cache in `server.rs` closes the client-facing half:
//! a retried `idempotency_key` is answered from the cache, flagged
//! `"replayed":true`, instead of being solved twice.
//!
//! ## File format
//!
//! ```text
//! header:  8-byte magic "SPLTJRNL" ++ u32-LE format version (1)
//! record:  u32-LE body length ++ u64-LE FNV-1a checksum of body ++ body
//! body:    kind u8 (1 = admitted, 2 = completed, 3 = payload)
//!          ++ kind-specific fields
//! ```
//!
//! All integers are little-endian. Request payloads are *interned*:
//! a payload record stores the raw request line under a 128-bit content
//! hash, written once per distinct payload, and every admitted record
//! carries only its envelope fields plus that hash. Identical requests
//! (a retry storm, a benchmark cycling a fixed pool) therefore cost one
//! large blob and many ~60-byte admission records instead of journaling
//! kilobytes of JSON per admission. A payload record always precedes
//! the first admitted record that references it — the two are appended
//! under one lock — so any valid prefix of the file resolves; an
//! admitted record whose hash has no preceding payload is structural
//! damage and truncates the scan there.
//!
//! A record whose length prefix, checksum, or body fails to validate —
//! and everything after it — is treated as a torn tail and truncated; a
//! bad magic or version is a typed [`JournalError`] (`splitd` exits
//! with a distinct code rather than guessing at the format).

use crate::wire::Priority;
use local_runtime::splitmix64;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// File magic, first 8 bytes of every journal.
pub const MAGIC: [u8; 8] = *b"SPLTJRNL";
/// On-disk format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;
/// Header length in bytes (magic + version).
pub const HEADER_LEN: usize = 12;

/// Hard cap on a single record body; anything larger than the biggest
/// admissible frame plus metadata is damage, not data.
const MAX_RECORD_BYTES: usize = (64 << 20) + 4096;

/// Under [`FsyncPolicy::Batch`], `fsync` once per this many appends.
/// Admission and completion records are tens of bytes once payloads are
/// interned, so this bounds the machine-crash loss window to ~64 KiB
/// while keeping the fsync cost (~100µs on commodity storage) far off
/// the per-request path. A process crash loses nothing regardless —
/// every record reaches the kernel before the journal returns.
const BATCH_SYNC_EVERY: u32 = 1024;

const KIND_ADMITTED: u8 = 1;
const KIND_COMPLETED: u8 = 2;
const KIND_PAYLOAD: u8 = 3;

/// 128-bit content address of an interned request payload.
pub type PayloadHash = [u8; 16];

/// Domain tag for [`PayloadHasher`] over raw wire-line bytes.
pub const DOMAIN_LINE: u8 = 0;
/// Domain tag for [`PayloadHasher`] over structural request fields
/// (see `wire::request_fingerprint`).
pub const DOMAIN_REQUEST: u8 = 1;
/// Domain tag for [`PayloadHasher`] over structural instance content
/// (see `wire::instance_fingerprint`) — the basis for instance handles.
pub const DOMAIN_INSTANCE: u8 = 2;

/// Two-lane incremental hash producing a [`PayloadHash`].
///
/// Built for the admission path: two multiplies per 64-bit word, so
/// fingerprinting a request is far cheaper than rendering it. This is
/// a content address for deduplication, not a security boundary — the
/// journal trusts its writer (the in-process server), and per-record
/// integrity is the FNV checksum, not this hash. The `domain` tag
/// separates byte-hashed wire lines from structural fingerprints so
/// the two can never alias.
#[derive(Clone, Debug)]
pub struct PayloadHasher {
    acc: [u64; 4],
    lane: u8,
}

/// One distinct odd multiplier per accumulator lane (the xxhash64
/// primes — chosen for their bit structure, nothing more).
const LANE_MUL: [u64; 4] = [
    0x9E37_79B1_85EB_CA87,
    0xC2B2_AE3D_27D4_EB4F,
    0x1656_67B1_9E37_79F9,
    0x85EB_CA77_C2B2_AE63,
];

impl PayloadHasher {
    /// Starts a hash stream in the given domain.
    pub fn new(domain: u8) -> PayloadHasher {
        let d = u64::from(domain);
        PayloadHasher {
            acc: [
                splitmix64(0x0053_504C_544A_524E ^ d),
                splitmix64(0x004C_4E52_4A54_4C50 ^ d),
                splitmix64(0x534A_4C52_504E_544C ^ d),
                splitmix64(0x4E54_504C_4A52_4C53 ^ d),
            ],
            lane: 0,
        }
    }

    /// Feeds one 64-bit word.
    ///
    /// Words stripe round-robin across four xor-multiply-rotate
    /// accumulators, so the multiply latency of consecutive words
    /// overlaps — hashing a large instance runs at multiplier
    /// throughput, not multiplier latency.
    #[inline]
    pub fn word(&mut self, w: u64) {
        let lane = usize::from(self.lane & 3);
        self.lane = self.lane.wrapping_add(1);
        self.acc[lane] = (self.acc[lane] ^ w)
            .wrapping_mul(LANE_MUL[lane])
            .rotate_left(27);
    }

    /// Feeds a length-prefixed byte string (so consecutive strings
    /// never alias across their boundary).
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.word(bytes.len() as u64);
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.word(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut last = [0u8; 8];
            last[..rem.len()].copy_from_slice(rem);
            self.word(u64::from_le_bytes(last));
        }
    }

    /// Finalizes the stream: both output words are avalanched folds of
    /// all four accumulators (plus the word count, so trailing zero
    /// words cannot alias an empty tail).
    pub fn finish(self) -> PayloadHash {
        let mut lo = splitmix64(0x9E37_79B9_7F4A_7C15 ^ u64::from(self.lane));
        let mut hi = splitmix64(0xC2B2_AE3D_27D4_EB4F ^ u64::from(self.lane));
        for a in self.acc {
            lo = splitmix64(lo ^ a);
            hi = splitmix64(hi ^ a.rotate_left(32));
        }
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&lo.to_le_bytes());
        out[8..].copy_from_slice(&hi.to_le_bytes());
        out
    }
}

/// Content address of a raw wire line ([`DOMAIN_LINE`]).
pub fn line_hash(line: &str) -> PayloadHash {
    let mut h = PayloadHasher::new(DOMAIN_LINE);
    h.bytes(line.as_bytes());
    h.finish()
}

/// When the journal flushes appends to stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every record — strongest durability, slowest.
    Always,
    /// `fsync` every few records — bounded loss window, near-`Never`
    /// throughput. The default for `splitd --journal`.
    Batch,
    /// Never `fsync`; rely on the OS flushing dirty pages. Survives a
    /// process kill (the page cache persists) but not a host crash.
    Never,
}

impl FsyncPolicy {
    /// All policies, in documentation order.
    pub const ALL: [FsyncPolicy; 3] = [FsyncPolicy::Always, FsyncPolicy::Batch, FsyncPolicy::Never];

    /// The wire/CLI name.
    pub fn name(self) -> &'static str {
        match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Batch => "batch",
            FsyncPolicy::Never => "never",
        }
    }

    /// Parses a CLI name; inverse of [`FsyncPolicy::name`].
    pub fn parse(name: &str) -> Option<FsyncPolicy> {
        FsyncPolicy::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// Why a journal could not be opened or scanned.
///
/// Only structural damage to the *header* is an error: a torn or
/// corrupt record tail is expected crash damage and is silently
/// truncated to the last valid record instead (reported via
/// [`ScanOutcome::truncated`]).
#[derive(Debug)]
pub enum JournalError {
    /// The file exists but does not start with the journal magic — it
    /// is not a splitd journal (or its header itself is torn).
    BadMagic(
        /// Path or description of the offending file.
        String,
    ),
    /// The journal was written by an incompatible format version.
    VersionMismatch {
        /// Version found in the file header.
        found: u32,
        /// Version this build supports.
        expected: u32,
    },
    /// An underlying filesystem error.
    Io(io::Error),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::BadMagic(what) => {
                write!(
                    f,
                    "corrupt journal: {what} does not start with the journal magic"
                )
            }
            JournalError::VersionMismatch { found, expected } => write!(
                f,
                "journal format version mismatch: file is v{found}, this build reads v{expected}"
            ),
            JournalError::Io(err) => write!(f, "journal i/o error: {err}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<io::Error> for JournalError {
    fn from(err: io::Error) -> Self {
        JournalError::Io(err)
    }
}

/// An admitted request as recorded in (and recovered from) the journal.
///
/// Carries the envelope only; the request payload itself lives in a
/// separate interned payload record addressed by
/// [`AdmittedRecord::payload`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdmittedRecord {
    /// Monotonic journal-assigned id; completion records refer to it.
    pub record_id: u64,
    /// The client-chosen request id (echoed on replies).
    pub id: String,
    /// Admission priority lane.
    pub priority: Priority,
    /// The request's `deadline_ms` budget, if any. Recovery drops it:
    /// the original admission clock died with the process.
    pub deadline_ms: Option<u64>,
    /// The client-supplied idempotency key, if any.
    pub idempotency_key: Option<String>,
    /// Content address of the interned request payload; resolves
    /// against the payload record earlier in the same journal.
    pub payload: PayloadHash,
}

/// One decoded journal record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Record {
    /// An interned request payload, written once per distinct content
    /// hash, always before the first admitted record referencing it.
    Payload {
        /// Content address admitted records refer to.
        hash: PayloadHash,
        /// The raw request frame, replayed through
        /// `wire::parse_request` on recovery.
        line: String,
    },
    /// A request passed admission control.
    Admitted(AdmittedRecord),
    /// The reply for an admitted record was handed to delivery.
    Completed {
        /// The [`AdmittedRecord::record_id`] this completes.
        record_id: u64,
    },
}

/// The result of scanning a journal byte image.
#[derive(Debug)]
pub struct ScanOutcome {
    /// Every fully-written record, in file order.
    pub records: Vec<Record>,
    /// Byte offset of the end of the last valid record (the length the
    /// file is truncated to on recovery).
    pub valid_len: usize,
    /// Bytes past `valid_len` — the torn tail a crash left behind.
    pub truncated: usize,
}

/// Point-in-time journal counters for heartbeat/stats frames.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Admitted records appended since this process opened the journal
    /// (interned payload records are not counted — they are storage,
    /// not admissions — but their size shows up in `bytes`).
    pub appended: u64,
    /// Completion records appended since open.
    pub completed: u64,
    /// Current journal file size in bytes.
    pub bytes: u64,
    /// Incomplete jobs recovered (re-enqueued) at open.
    pub recovered: u64,
}

/// An incomplete admitted job joined with its interned payload — what
/// [`Journal::take_recovered`] hands the server to re-enqueue.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveredJob {
    /// The envelope the journal recorded at admission.
    pub record: AdmittedRecord,
    /// The resolved request line, replayed through
    /// `wire::parse_request` on recovery.
    pub line: String,
}

// FNV-1a, 64-bit: dependency-free, byte-order independent, and plenty
// to catch the partial writes and zero-fill a crash can leave behind
// (this is damage detection, not an adversarial MAC).
fn checksum(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Cursor over a record body; every getter fails soft (`None`) so a
/// truncated body decodes as torn, never as a panic.
struct BodyReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BodyReader<'a> {
    fn u8(&mut self) -> Option<u8> {
        let b = *self.bytes.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn u32(&mut self) -> Option<u32> {
        let raw = self.bytes.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        Some(u32::from_le_bytes(raw.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        let raw = self.bytes.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(u64::from_le_bytes(raw.try_into().ok()?))
    }

    fn hash(&mut self) -> Option<PayloadHash> {
        let raw = self.bytes.get(self.pos..self.pos + 16)?;
        self.pos += 16;
        raw.try_into().ok()
    }

    fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let raw = self.bytes.get(self.pos..self.pos + len)?;
        self.pos += len;
        String::from_utf8(raw.to_vec()).ok()
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

fn priority_from_lane(lane: u8) -> Option<Priority> {
    match lane {
        0 => Some(Priority::High),
        1 => Some(Priority::Normal),
        2 => Some(Priority::Low),
        _ => None,
    }
}

fn encode_body(record: &Record) -> Vec<u8> {
    let mut body = Vec::new();
    match record {
        Record::Payload { hash, line } => {
            body.push(KIND_PAYLOAD);
            body.extend_from_slice(hash);
            put_str(&mut body, line);
        }
        Record::Admitted(rec) => {
            body.push(KIND_ADMITTED);
            put_u64(&mut body, rec.record_id);
            body.push(rec.priority.lane() as u8);
            let flags = u8::from(rec.deadline_ms.is_some())
                | (u8::from(rec.idempotency_key.is_some()) << 1);
            body.push(flags);
            if let Some(ms) = rec.deadline_ms {
                put_u64(&mut body, ms);
            }
            if let Some(key) = &rec.idempotency_key {
                put_str(&mut body, key);
            }
            put_str(&mut body, &rec.id);
            body.extend_from_slice(&rec.payload);
        }
        Record::Completed { record_id } => {
            body.push(KIND_COMPLETED);
            put_u64(&mut body, *record_id);
        }
    }
    body
}

/// Frames a record body with its length prefix and checksum — the exact
/// bytes [`Journal::open`]'s scan reverses.
pub fn encode_record(record: &Record) -> Vec<u8> {
    let body = encode_body(record);
    let mut out = Vec::with_capacity(12 + body.len());
    put_u32(&mut out, body.len() as u32);
    put_u64(&mut out, checksum(&body));
    out.extend_from_slice(&body);
    out
}

fn decode_body(body: &[u8]) -> Option<Record> {
    let mut r = BodyReader {
        bytes: body,
        pos: 0,
    };
    let record = match r.u8()? {
        KIND_PAYLOAD => Record::Payload {
            hash: r.hash()?,
            line: r.str()?,
        },
        KIND_ADMITTED => {
            let record_id = r.u64()?;
            let priority = priority_from_lane(r.u8()?)?;
            let flags = r.u8()?;
            let deadline_ms = if flags & 1 != 0 { Some(r.u64()?) } else { None };
            let idempotency_key = if flags & 2 != 0 { Some(r.str()?) } else { None };
            let id = r.str()?;
            let payload = r.hash()?;
            Record::Admitted(AdmittedRecord {
                record_id,
                id,
                priority,
                deadline_ms,
                idempotency_key,
                payload,
            })
        }
        KIND_COMPLETED => Record::Completed {
            record_id: r.u64()?,
        },
        _ => return None,
    };
    r.done().then_some(record)
}

/// Scans a journal byte image: validates the header, decodes every
/// fully-written record, and reports where the valid prefix ends.
///
/// Record-level damage (short length prefix, checksum mismatch,
/// undecodable body, implausible length, an admitted record whose
/// payload hash has no preceding payload record) is **not** an error —
/// the scan stops at the last valid record and everything after it
/// counts as the torn tail. Only a missing/at-odds header is a typed
/// error. Because appends write a payload record before the first
/// admitted record that references it, every admitted record in a
/// scanned prefix is guaranteed to resolve.
///
/// # Errors
///
/// [`JournalError::BadMagic`] when the image is shorter than a header
/// or starts with other bytes; [`JournalError::VersionMismatch`] for a
/// foreign format version.
pub fn scan(bytes: &[u8]) -> Result<ScanOutcome, JournalError> {
    if bytes.len() < HEADER_LEN || bytes[..8] != MAGIC {
        return Err(JournalError::BadMagic(format!(
            "{}-byte image",
            bytes.len()
        )));
    }
    let found = u32::from_le_bytes(bytes[8..12].try_into().expect("4 header bytes"));
    if found != FORMAT_VERSION {
        return Err(JournalError::VersionMismatch {
            found,
            expected: FORMAT_VERSION,
        });
    }
    let mut records = Vec::new();
    let mut interned: HashSet<PayloadHash> = HashSet::new();
    let mut pos = HEADER_LEN;
    while let Some(prefix) = bytes.get(pos..pos + 12) {
        let len = u32::from_le_bytes(prefix[..4].try_into().expect("4 bytes")) as usize;
        let want = u64::from_le_bytes(prefix[4..12].try_into().expect("8 bytes"));
        if len == 0 || len > MAX_RECORD_BYTES {
            break;
        }
        let Some(body) = bytes.get(pos + 12..pos + 12 + len) else {
            break;
        };
        if checksum(body) != want {
            break;
        }
        let Some(record) = decode_body(body) else {
            break;
        };
        match &record {
            Record::Payload { hash, .. } => {
                interned.insert(*hash);
            }
            // a dangling payload reference is damage, same as a failed
            // checksum: stop at the record before it
            Record::Admitted(rec) if !interned.contains(&rec.payload) => break,
            _ => {}
        }
        records.push(record);
        pos += 12 + len;
    }
    Ok(ScanOutcome {
        records,
        valid_len: pos,
        truncated: bytes.len() - pos,
    })
}

/// Folds a scanned record stream into the incomplete jobs a restart
/// must re-enqueue, preserving original admission order.
pub fn incomplete(records: &[Record]) -> Vec<AdmittedRecord> {
    let mut pending: Vec<AdmittedRecord> = Vec::new();
    for record in records {
        match record {
            Record::Payload { .. } => {}
            Record::Admitted(rec) => pending.push(rec.clone()),
            Record::Completed { record_id } => pending.retain(|r| r.record_id != *record_id),
        }
    }
    pending
}

struct Inner {
    file: File,
    since_sync: u32,
    next_id: u64,
    /// Payload hashes already written to this file — the intern set.
    interned: HashSet<PayloadHash>,
    /// Reusable frame buffer, so steady-state appends allocate nothing.
    buf: Vec<u8>,
}

/// The write-ahead journal behind `splitd --journal`.
///
/// Appends are serialized through an internal lock (the ingest thread
/// appends admissions, workers append completions); counters are read
/// lock-free for heartbeat frames. See the module docs for the format
/// and recovery contract.
pub struct Journal {
    path: PathBuf,
    policy: FsyncPolicy,
    /// A dup of the journal fd used only for `fsync`, so syncing never
    /// holds the append lock: a worker marking a completion is not
    /// convoyed behind the ingest thread's batch fsync (or vice
    /// versa). `fsync` flushes everything written before the call, so
    /// a record staged under the lock is covered by the sync its
    /// appender issues after unlocking.
    sync_handle: File,
    inner: Mutex<Inner>,
    appended: AtomicU64,
    completed: AtomicU64,
    bytes: AtomicU64,
    recovered_count: u64,
    recovered: Mutex<Vec<RecoveredJob>>,
}

impl fmt::Debug for Journal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Journal")
            .field("path", &self.path)
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

impl Journal {
    /// Opens (creating if absent) the journal at `path`, recovering the
    /// tail: a torn final record is truncated, completed work is
    /// dropped, and every admitted-but-incomplete job is queued up for
    /// [`Journal::take_recovered`]. The intern set is rebuilt from the
    /// surviving payload records, so a reopened journal keeps
    /// deduplicating against everything it already stores.
    ///
    /// # Errors
    ///
    /// [`JournalError::BadMagic`] / [`JournalError::VersionMismatch`]
    /// when the file exists but is not a compatible journal — the
    /// caller must surface these loudly (in `splitd`, a distinct exit
    /// code) rather than overwrite data it cannot read.
    /// [`JournalError::Io`] for filesystem failures.
    pub fn open(path: &Path, policy: FsyncPolicy) -> Result<Journal, JournalError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            // an existing journal is recovered, never clobbered
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let (records, valid_len) = if bytes.is_empty() {
            let mut header = Vec::with_capacity(HEADER_LEN);
            header.extend_from_slice(&MAGIC);
            header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
            file.write_all(&header)?;
            file.sync_all()?;
            (Vec::new(), HEADER_LEN)
        } else {
            let outcome = scan(&bytes)?;
            if outcome.truncated > 0 {
                file.set_len(outcome.valid_len as u64)?;
                file.sync_all()?;
            }
            (outcome.records, outcome.valid_len)
        };
        file.seek(SeekFrom::Start(valid_len as u64))?;
        let next_id = records
            .iter()
            .filter_map(|r| match r {
                Record::Payload { .. } => None,
                Record::Admitted(rec) => Some(rec.record_id),
                Record::Completed { record_id } => Some(*record_id),
            })
            .max()
            .map_or(0, |m| m + 1);
        let mut payloads: HashMap<PayloadHash, String> = HashMap::new();
        for record in &records {
            if let Record::Payload { hash, line } = record {
                payloads.insert(*hash, line.clone());
            }
        }
        let recovered: Vec<RecoveredJob> = incomplete(&records)
            .into_iter()
            .map(|record| {
                let line = payloads
                    .get(&record.payload)
                    .cloned()
                    .expect("scan admits only resolvable payload references");
                RecoveredJob { record, line }
            })
            .collect();
        Ok(Journal {
            path: path.to_path_buf(),
            policy,
            sync_handle: file.try_clone()?,
            inner: Mutex::new(Inner {
                file,
                since_sync: 0,
                next_id,
                interned: payloads.into_keys().collect(),
                buf: Vec::new(),
            }),
            appended: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            bytes: AtomicU64::new(valid_len as u64),
            recovered_count: recovered.len() as u64,
            recovered: Mutex::new(recovered),
        })
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The configured fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// Frames and writes the body staged in `inner.buf` (12 placeholder
    /// bytes, then the body — the same layout [`encode_record`]
    /// produces, without an allocation per append). Returns whether the
    /// policy owes an fsync for this record; the caller issues it via
    /// [`Journal::sync_after_write`] **after** releasing the lock.
    fn write_frame(&self, inner: &mut Inner) -> io::Result<bool> {
        let len = (inner.buf.len() - 12) as u32;
        let sum = checksum(&inner.buf[12..]);
        inner.buf[..4].copy_from_slice(&len.to_le_bytes());
        inner.buf[4..12].copy_from_slice(&sum.to_le_bytes());
        inner.file.write_all(&inner.buf)?;
        self.bytes
            .fetch_add(inner.buf.len() as u64, Ordering::Relaxed);
        Ok(match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::Batch => {
                inner.since_sync += 1;
                if inner.since_sync >= BATCH_SYNC_EVERY {
                    inner.since_sync = 0;
                    true
                } else {
                    false
                }
            }
            FsyncPolicy::Never => false,
        })
    }

    /// Settles an fsync debt reported by [`Journal::write_frame`],
    /// outside the append lock. A concurrent appender may sync the same
    /// bytes again — harmless, and cheaper than convoying every writer
    /// behind one thread's fsync.
    fn sync_after_write(&self, owed: bool) -> io::Result<()> {
        if owed {
            self.sync_handle.sync_data()?;
        }
        Ok(())
    }

    /// Records an admission of a raw wire line, returning the
    /// journal-assigned record id that [`Journal::mark_completed`] must
    /// echo. The line is interned by content hash: the first admission
    /// with a given payload journals the blob, every later one only a
    /// small reference record.
    ///
    /// # Errors
    ///
    /// Propagates filesystem write failures.
    pub fn append_admitted(
        &self,
        id: &str,
        priority: Priority,
        deadline_ms: Option<u64>,
        idempotency_key: Option<&str>,
        line: &str,
    ) -> io::Result<u64> {
        self.append_admitted_interned(
            id,
            priority,
            deadline_ms,
            idempotency_key,
            line_hash(line),
            || line.to_string(),
        )
    }

    /// [`Journal::append_admitted`] with a caller-computed content
    /// hash and a lazy payload renderer: `render` runs only when the
    /// hash is not interned yet. This keeps the hot admission path
    /// from serializing a payload the journal already stores — the
    /// in-process server fingerprints parsed requests structurally
    /// (`wire::request_fingerprint`) instead of rendering them.
    ///
    /// The caller owns the hash contract: two payloads may share a
    /// hash only if their rendered lines are byte-identical.
    ///
    /// # Errors
    ///
    /// Propagates filesystem write failures.
    pub fn append_admitted_interned<F: FnOnce() -> String>(
        &self,
        id: &str,
        priority: Priority,
        deadline_ms: Option<u64>,
        idempotency_key: Option<&str>,
        payload: PayloadHash,
        render: F,
    ) -> io::Result<u64> {
        let mut owed = false;
        let record_id = {
            let inner = &mut *self.inner.lock().unwrap();
            if !inner.interned.contains(&payload) {
                let line = render();
                inner.buf.clear();
                inner.buf.resize(12, 0);
                inner.buf.push(KIND_PAYLOAD);
                inner.buf.extend_from_slice(&payload);
                put_str(&mut inner.buf, &line);
                owed |= self.write_frame(inner)?;
                inner.interned.insert(payload);
            }
            let record_id = inner.next_id;
            inner.next_id += 1;
            inner.buf.clear();
            inner.buf.resize(12, 0);
            inner.buf.push(KIND_ADMITTED);
            put_u64(&mut inner.buf, record_id);
            inner.buf.push(priority.lane() as u8);
            let flags =
                u8::from(deadline_ms.is_some()) | (u8::from(idempotency_key.is_some()) << 1);
            inner.buf.push(flags);
            if let Some(ms) = deadline_ms {
                put_u64(&mut inner.buf, ms);
            }
            if let Some(key) = idempotency_key {
                put_str(&mut inner.buf, key);
            }
            put_str(&mut inner.buf, id);
            inner.buf.extend_from_slice(&payload);
            owed |= self.write_frame(inner)?;
            record_id
        };
        self.sync_after_write(owed)?;
        self.appended.fetch_add(1, Ordering::Relaxed);
        Ok(record_id)
    }

    /// Records that the reply for `record_id` was handed to delivery —
    /// the job will not be re-run after a crash.
    ///
    /// # Errors
    ///
    /// Propagates filesystem write failures.
    pub fn mark_completed(&self, record_id: u64) -> io::Result<()> {
        let owed = {
            let inner = &mut *self.inner.lock().unwrap();
            inner.buf.clear();
            inner.buf.resize(12, 0);
            inner.buf.push(KIND_COMPLETED);
            put_u64(&mut inner.buf, record_id);
            self.write_frame(inner)?
        };
        self.sync_after_write(owed)?;
        self.completed.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Forces buffered appends to stable storage regardless of policy.
    ///
    /// # Errors
    ///
    /// Propagates the underlying `fsync` failure.
    pub fn sync(&self) -> io::Result<()> {
        self.inner.lock().unwrap().since_sync = 0;
        self.sync_handle.sync_data()
    }

    /// Drains the jobs recovered at open (admission order), each
    /// joined with its resolved payload line. The server calls this
    /// once at startup to re-enqueue them.
    pub fn take_recovered(&self) -> Vec<RecoveredJob> {
        std::mem::take(&mut *self.recovered.lock().unwrap())
    }

    /// Point-in-time counters for heartbeat/stats frames.
    pub fn stats(&self) -> JournalStats {
        JournalStats {
            appended: self.appended.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            recovered: self.recovered_count,
        }
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        if self.policy != FsyncPolicy::Never {
            if let Ok(inner) = self.inner.get_mut() {
                let _ = inner.file.sync_data();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    static UNIQUE: AtomicU32 = AtomicU32::new(0);

    fn temp_path(tag: &str) -> PathBuf {
        let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("splitd-journal-{tag}-{}-{n}", std::process::id()))
    }

    fn line_for(id: &str) -> String {
        format!("{{\"v\":1,\"type\":\"request\",\"id\":\"{id}\"}}")
    }

    fn payload_record(id: &str) -> Record {
        let line = line_for(id);
        Record::Payload {
            hash: line_hash(&line),
            line,
        }
    }

    fn admitted(record_id: u64, id: &str, key: Option<&str>) -> AdmittedRecord {
        AdmittedRecord {
            record_id,
            id: id.to_string(),
            priority: Priority::Normal,
            deadline_ms: None,
            idempotency_key: key.map(str::to_string),
            payload: line_hash(&line_for(id)),
        }
    }

    fn image(records: &[Record]) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        for record in records {
            bytes.extend_from_slice(&encode_record(record));
        }
        bytes
    }

    #[test]
    fn records_round_trip_through_encode_and_scan() {
        let records = vec![
            payload_record("r0"),
            Record::Admitted(AdmittedRecord {
                record_id: 0,
                id: "r0".into(),
                priority: Priority::High,
                deadline_ms: Some(250),
                idempotency_key: Some("key-0".into()),
                payload: line_hash(&line_for("r0")),
            }),
            Record::Completed { record_id: 0 },
            payload_record("r1"),
            Record::Admitted(admitted(1, "r1", None)),
        ];
        let outcome = scan(&image(&records)).expect("valid image");
        assert_eq!(outcome.records, records);
        assert_eq!(outcome.truncated, 0);
    }

    #[test]
    fn hasher_separates_domains_and_boundaries() {
        assert_eq!(line_hash("payload"), line_hash("payload"));
        assert_ne!(line_hash("payload"), line_hash("payloae"));
        let mut ab_c = PayloadHasher::new(DOMAIN_LINE);
        ab_c.bytes(b"ab");
        ab_c.bytes(b"c");
        let mut a_bc = PayloadHasher::new(DOMAIN_LINE);
        a_bc.bytes(b"a");
        a_bc.bytes(b"bc");
        assert_ne!(
            ab_c.finish(),
            a_bc.finish(),
            "length prefixes keep strings apart"
        );
        let mut other_domain = PayloadHasher::new(DOMAIN_REQUEST);
        other_domain.bytes(b"payload");
        assert_ne!(
            line_hash("payload"),
            other_domain.finish(),
            "domains never alias"
        );
    }

    #[test]
    fn incomplete_preserves_admission_order() {
        let records = vec![
            payload_record("a"),
            Record::Admitted(admitted(0, "a", None)),
            payload_record("b"),
            Record::Admitted(admitted(1, "b", Some("kb"))),
            payload_record("c"),
            Record::Admitted(admitted(2, "c", None)),
            Record::Completed { record_id: 1 },
        ];
        let pending = incomplete(&records);
        assert_eq!(
            pending.iter().map(|r| r.id.as_str()).collect::<Vec<_>>(),
            ["a", "c"],
            "completed jobs drop out, order of the rest is admission order"
        );
    }

    #[test]
    fn bad_magic_and_version_mismatch_are_typed_errors() {
        assert!(matches!(
            scan(b"not a journal"),
            Err(JournalError::BadMagic(_))
        ));
        assert!(matches!(scan(&MAGIC[..6]), Err(JournalError::BadMagic(_))));
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            scan(&bytes),
            Err(JournalError::VersionMismatch {
                found: 99,
                expected: FORMAT_VERSION
            })
        ));
    }

    #[test]
    fn corrupt_record_truncates_to_the_last_valid_one() {
        let records = vec![
            payload_record("a"),
            Record::Admitted(admitted(0, "a", None)),
            payload_record("b"),
            Record::Admitted(admitted(1, "b", None)),
        ];
        let mut bytes = image(&records);
        // flip one byte inside the third record's (payload "b") body
        let keep: usize = records[..2]
            .iter()
            .map(|r| encode_record(r).len())
            .sum::<usize>()
            + HEADER_LEN;
        bytes[keep + 20] ^= 0xFF;
        let outcome = scan(&bytes).expect("header is fine");
        assert_eq!(outcome.records, records[..2]);
        assert_eq!(outcome.valid_len, keep);
        assert!(outcome.truncated > 0);
    }

    #[test]
    fn dangling_payload_reference_truncates_the_scan() {
        let records = vec![
            payload_record("a"),
            Record::Admitted(admitted(0, "a", None)),
            // admitted "b" without its payload record: structural damage
            Record::Admitted(admitted(1, "b", None)),
        ];
        let outcome = scan(&image(&records)).expect("header is fine");
        assert_eq!(outcome.records, records[..2]);
        assert!(outcome.truncated > 0, "the dangling reference is torn tail");
    }

    #[test]
    fn identical_payloads_are_interned_once_even_across_reopen() {
        let path = temp_path("intern");
        {
            let journal = Journal::open(&path, FsyncPolicy::Never).expect("fresh journal");
            journal
                .append_admitted("a", Priority::Normal, None, None, "same-line")
                .unwrap();
            journal
                .append_admitted("b", Priority::Normal, None, None, "same-line")
                .unwrap();
            journal
                .append_admitted("c", Priority::Normal, None, None, "other-line")
                .unwrap();
        }
        {
            // the reopened journal rebuilds the intern set from the file
            let journal = Journal::open(&path, FsyncPolicy::Never).expect("reopen");
            for rec in journal.take_recovered() {
                journal.mark_completed(rec.record.record_id).unwrap();
            }
            journal
                .append_admitted("d", Priority::Normal, None, None, "same-line")
                .unwrap();
        }
        let bytes = std::fs::read(&path).unwrap();
        let outcome = scan(&bytes).expect("clean image");
        let payloads: Vec<&str> = outcome
            .records
            .iter()
            .filter_map(|r| match r {
                Record::Payload { line, .. } => Some(line.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(
            payloads,
            ["same-line", "other-line"],
            "one blob per distinct payload"
        );
        let admissions = outcome
            .records
            .iter()
            .filter(|r| matches!(r, Record::Admitted(_)))
            .count();
        assert_eq!(
            admissions, 4,
            "every admission got its own reference record"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_truncates_a_torn_tail_and_recovers_incomplete_jobs() {
        let path = temp_path("torn");
        {
            let journal = Journal::open(&path, FsyncPolicy::Always).expect("fresh journal");
            let a = journal
                .append_admitted("a", Priority::Normal, None, None, "line-a")
                .unwrap();
            journal
                .append_admitted("b", Priority::High, Some(7), Some("kb"), "line-b")
                .unwrap();
            journal.mark_completed(a).unwrap();
        }
        // tear the file mid-record: append half of a third admission
        let torn = encode_record(&Record::Admitted(admitted(2, "c", None)));
        {
            let mut file = OpenOptions::new().append(true).open(&path).unwrap();
            file.write_all(&torn[..torn.len() / 2]).unwrap();
        }
        let full_len = std::fs::metadata(&path).unwrap().len();
        let journal = Journal::open(&path, FsyncPolicy::Batch).expect("reopen");
        let recovered = journal.take_recovered();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].record.id, "b");
        assert_eq!(recovered[0].record.priority, Priority::High);
        assert_eq!(recovered[0].record.deadline_ms, Some(7));
        assert_eq!(recovered[0].record.idempotency_key.as_deref(), Some("kb"));
        assert_eq!(
            recovered[0].line, "line-b",
            "the payload reference resolves"
        );
        assert_eq!(journal.stats().recovered, 1);
        assert!(
            std::fs::metadata(&path).unwrap().len() < full_len,
            "torn tail was truncated on open"
        );
        // ids keep growing past everything the file ever mentioned
        let next = journal
            .append_admitted("d", Priority::Low, None, None, "line-d")
            .unwrap();
        assert_eq!(next, 2);
        drop(journal);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_on_a_foreign_file_is_a_typed_error_not_a_panic() {
        let path = temp_path("foreign");
        std::fs::write(&path, b"{\"this\":\"is json, not a journal\"}").unwrap();
        match Journal::open(&path, FsyncPolicy::Batch) {
            Err(JournalError::BadMagic(_)) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    mod torn_prefix {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            // The recovery contract, stated as a property: cut a valid
            // journal at ANY byte and the scan recovers exactly the
            // records that were fully written before the cut — no
            // panic, no invented record, no lost complete record. The
            // payload space is deliberately tiny (token % 4) so most
            // admissions reference an already-interned blob, exercising
            // both blob+reference pairs and bare references.
            #[test]
            fn any_byte_prefix_recovers_exactly_the_full_records(
                (specs, cut_permille) in (
                    proptest::collection::vec(
                        // (name token, lane, key?, completed?) per record
                        (0u64..1 << 32, 0u8..3, 0u8..2, 0u8..2),
                        1..8
                    ),
                    0u32..1001
                )
            ) {
                let mut records = Vec::new();
                let mut interned: std::collections::HashSet<PayloadHash> =
                    std::collections::HashSet::new();
                for (i, (token, lane, has_key, complete)) in specs.iter().enumerate() {
                    let line = format!("{{\"p\":{}}}", token % 4);
                    let hash = line_hash(&line);
                    if interned.insert(hash) {
                        records.push(Record::Payload { hash, line });
                    }
                    records.push(Record::Admitted(AdmittedRecord {
                        record_id: i as u64,
                        id: format!("id-{token:x}"),
                        priority: priority_from_lane(*lane).unwrap(),
                        deadline_ms: (i % 2 == 0).then_some(i as u64 * 10),
                        idempotency_key: (*has_key == 1).then(|| format!("key-{token:x}")),
                        payload: hash,
                    }));
                    if *complete == 1 {
                        records.push(Record::Completed { record_id: i as u64 });
                    }
                }
                let bytes = image(&records);
                let cut = HEADER_LEN
                    + (bytes.len() - HEADER_LEN) * cut_permille as usize / 1000;
                let outcome = scan(&bytes[..cut]).expect("header intact");
                // expected: the records whose framed bytes fit entirely
                // before the cut
                let mut expect = Vec::new();
                let mut pos = HEADER_LEN;
                for record in &records {
                    pos += encode_record(record).len();
                    if pos <= cut {
                        expect.push(record.clone());
                    } else {
                        break;
                    }
                }
                prop_assert_eq!(&outcome.records, &expect);
                prop_assert_eq!(outcome.valid_len + outcome.truncated, cut);
            }
        }
    }
}
