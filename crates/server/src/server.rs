//! The `splitd` service core: ingest → queue → workers → reporting.
//!
//! A [`Server`] owns one global [`JobQueue`] and a fixed pool of
//! persistent workers, each holding its own single-threaded
//! [`Session`]. Transports (or in-process callers) open a
//! [`Connection`], which splits into a [`Submitter`] half (the ingest
//! side: classifies lines, applies admission control, assigns reporting
//! sequence numbers) and a [`FrameReceiver`] half (the reporting side: a
//! reorder buffer that releases reply frames strictly in submission
//! order, whatever order workers finish in).
//!
//! Every non-empty submitted line consumes exactly one sequence number
//! and produces exactly one reply frame — malformed lines become typed
//! `error` frames, pings become `heartbeat` frames, refused admissions
//! become `overloaded` error frames — so a client can always match
//! replies to inputs positionally as well as by id. Worker panics are
//! caught and reported as the reserved `internal-panic` error payload;
//! they never tear down the pool or the connection.

use crate::chaos::{self, ChaosConfig};
use crate::journal::{Journal, PayloadHash};
use crate::queue::{JobQueue, PushError};
use crate::wire::{self, ClientFrame, Envelope, Priority, StatsSnapshot, Timing};
use splitgraph::delta::EdgeDelta;
use splitting_api::{ApiError, CancelToken, HeldSolution, Instance, Request, Session};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// What to do when a request arrives while the queue is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Admission {
    /// Refuse the request with a typed `overloaded` error frame (the
    /// default): the client learns immediately and may retry after
    /// backing off.
    #[default]
    Reject,
    /// Park the ingest thread until a slot frees: backpressure
    /// propagates to the client through its pipe or socket buffer.
    Block,
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Persistent worker threads (default 1 — matches the single-vCPU
    /// reference environment; results are identical at any width).
    pub workers: usize,
    /// Bound on queued jobs across all priority lanes (default 256).
    pub queue_capacity: usize,
    /// Full-queue policy (default [`Admission::Reject`]).
    pub admission: Admission,
    /// Attach `queued_ns`/`solve_ns` to reply frames (default true).
    /// Disable for byte-reproducible reply streams.
    pub record_timings: bool,
    /// Reject frames longer than this many bytes with a typed error
    /// (default 8 MiB).
    pub max_frame_bytes: usize,
    /// Bound on buffered reply frames per connection (default 1024).
    /// A consumer that falls further behind is given
    /// [`write_timeout`](Self::write_timeout) to catch up, then evicted.
    pub reply_buffer: usize,
    /// How long a delivery may wait on a full per-connection reply
    /// buffer before the connection is evicted (default 5 s). Eviction
    /// drops the slow client's connection — never the server: the
    /// worker returns to the pool immediately.
    pub write_timeout: Duration,
    /// Bound on [`Server::drain`]/[`Server::shutdown`] (default 10 s):
    /// past it, in-flight solves are cancelled at their next
    /// checkpoint so the daemon always terminates.
    pub drain_deadline: Duration,
    /// Backoff hint attached to `overloaded` rejections, milliseconds
    /// (default 25). Clients should treat it as the base of an
    /// exponential backoff with jitter.
    pub retry_after_ms: u64,
    /// Seeded fault injection (default `None` — no faults). A
    /// test/bench-only hook; see [`crate::chaos`].
    pub chaos: Option<ChaosConfig>,
    /// Write-ahead journal making admitted work durable (default `None`
    /// — no journal). When set, every admission is journaled before it
    /// is queued, completions are journaled when the reply is handed to
    /// delivery, and [`Server::start`] re-enqueues whatever the journal
    /// recovered. See [`crate::journal`].
    pub journal: Option<Arc<Journal>>,
    /// Bound on the idempotency reply cache (default 256 completed
    /// keys). Only requests carrying an `idempotency_key` occupy a
    /// slot; `0` disables the cache entirely.
    pub idempotency_capacity: usize,
    /// Bound on cached held solutions for churn repair (default 64;
    /// `0` disables holding). Each entry pins a full instance copy plus
    /// its coloring. At capacity, adopting a fresh solution evicts the
    /// least-recently-used entry — adoption is never refused.
    pub held_capacity: usize,
    /// Compact journaled state records (upload/mutate/release) once
    /// more than this many are outstanding (default 64; `0` disables
    /// compaction): the interned-handle table is snapshotted as
    /// synthetic upload records and the superseded history is marked
    /// completed, so recovery replays the snapshot plus the tail
    /// instead of every mutation ever applied.
    pub journal_compact_threshold: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 1,
            queue_capacity: 256,
            admission: Admission::default(),
            record_timings: true,
            max_frame_bytes: 8 << 20,
            reply_buffer: 1024,
            write_timeout: Duration::from_secs(5),
            drain_deadline: Duration::from_secs(10),
            retry_after_ms: 25,
            chaos: None,
            journal: None,
            idempotency_capacity: 256,
            held_capacity: 64,
            journal_compact_threshold: 64,
        }
    }
}

enum Payload {
    /// A raw wire line; the worker runs the strict body parse.
    Wire(String),
    /// An already-typed request (the in-process fast path used by the
    /// benchmark harness to measure queue/worker machinery without
    /// codec cost).
    Parsed(Box<Request>),
}

struct Job {
    conn: u64,
    seq: u64,
    id: String,
    payload: Payload,
    enqueued: Option<Instant>,
    /// Absolute expiry and the client's original ms budget, when the
    /// request carried a `deadline_ms`.
    deadline: Option<(Instant, u64)>,
    /// Journal record id of this admission, when a journal is armed —
    /// completion is marked against it once the reply is delivered.
    journal_id: Option<u64>,
    /// The interned-instance hash the request addressed, when it came
    /// in handle form — the key the worker uses to find (or seed) the
    /// held-solution cache entry for incremental churn repair.
    handle_hash: Option<PayloadHash>,
    /// Client-supplied idempotency key; the delivered reply is cached
    /// under it so a retry replays instead of re-solving.
    idempotency_key: Option<String>,
    /// Field ranges and pre-parsed edge pairs harvested by the ingest
    /// scan, when the frame's spelling was canonical — the worker then
    /// re-scans nothing. Never journaled; recovered jobs re-parse.
    prescan: Option<wire::PreScan>,
}

enum Report {
    Frame { seq: u64, line: String },
    Finished { total: u64 },
}

/// How long a blocked delivery parks between retries of a full
/// per-connection reply buffer.
const DELIVER_POLL: Duration = Duration::from_millis(1);

/// Reserved connection id for jobs re-enqueued from the journal at
/// startup. It is never registered, so deliveries to it are silently
/// dropped — recovery cares about the journal completion and the
/// idempotency cache, not about streaming a reply to a connection that
/// no longer exists. Client connection ids count up from 0 and cannot
/// collide with it.
const RECOVERY_CONN: u64 = u64::MAX;

/// What reply frame a cached payload replays as.
#[derive(Clone, Copy)]
enum ReplyKind {
    /// A solved request (`solution` frame).
    Solution,
    /// A typed error (`error` frame).
    Error,
    /// An applied mutation (`mutated` frame).
    Mutated,
}

/// A delivered reply remembered under its idempotency key.
#[derive(Clone)]
struct CachedReply {
    /// Which frame type the replay renders.
    kind: ReplyKind,
    /// The reply payload, byte-for-byte as first delivered.
    payload: String,
}

/// Bounded LRU of delivered replies keyed by client idempotency key.
/// Linear-scan recency bookkeeping — the cache is small (hundreds of
/// entries) and every touch already holds the mutex.
struct IdempotencyCache {
    capacity: usize,
    order: VecDeque<String>,
    replies: HashMap<String, CachedReply>,
}

impl IdempotencyCache {
    fn new(capacity: usize) -> Self {
        IdempotencyCache {
            capacity,
            order: VecDeque::new(),
            replies: HashMap::new(),
        }
    }

    fn touch(&mut self, key: &str) {
        if let Some(pos) = self.order.iter().position(|k| k == key) {
            let k = self.order.remove(pos).expect("position is in range");
            self.order.push_back(k);
        }
    }

    fn get(&mut self, key: &str) -> Option<CachedReply> {
        let hit = self.replies.get(key).cloned()?;
        self.touch(key);
        Some(hit)
    }

    fn insert(&mut self, key: String, reply: CachedReply) {
        if self.capacity == 0 {
            return;
        }
        if self.replies.insert(key.clone(), reply).is_some() {
            self.touch(&key);
            return;
        }
        self.order.push_back(key);
        if self.order.len() > self.capacity {
            if let Some(evicted) = self.order.pop_front() {
                self.replies.remove(&evicted);
            }
        }
    }
}

/// A held solution waiting for churn: the live [`HeldSolution`] plus
/// the edge deltas applied to its instance (by `mutate` frames) since
/// the last solve. The next handle-solve with the same policy drains
/// `pending` through the incremental repair path instead of solving
/// from scratch.
struct HeldEntry {
    held: HeldSolution,
    pending: Vec<EdgeDelta>,
    /// Recency stamp from [`Shared::held_tick`]; the entry with the
    /// smallest stamp is the LRU eviction victim at capacity.
    last_used: u64,
}

struct Shared {
    queue: JobQueue<Job>,
    registry: Mutex<HashMap<u64, SyncSender<Report>>>,
    served: AtomicU64,
    rejected: AtomicU64,
    evicted: AtomicU64,
    replayed: AtomicU64,
    inflight: AtomicUsize,
    next_conn: AtomicU64,
    /// Set when the seeded `process_kill` fault fires (or
    /// [`Server::halt`] is called): the process is "dead" — ingest
    /// stops admitting, workers stop solving and delivering, and
    /// nothing further is journaled, exactly as a real `kill -9`
    /// behaves.
    killed: AtomicBool,
    idempotency: Mutex<IdempotencyCache>,
    /// Interned instances, keyed by content hash (`upload` frames).
    /// Requests carrying a handle resolve here at ingest and share the
    /// `Arc` — a handle solve never re-parses or copies the graph.
    handles: Mutex<HashMap<crate::journal::PayloadHash, Arc<splitting_api::Instance>>>,
    /// Instance edge parses that fell off the zero-copy fast scanner
    /// onto the strict fallback (canonical encodings never do).
    parse_fallbacks: AtomicU64,
    /// Held solutions for handle-form weak-splitting requests, keyed by
    /// `(instance fingerprint, policy fingerprint)`. `mutate` re-keys
    /// entries to the patched instance's hash and records the delta;
    /// the next matching solve repairs incrementally.
    held: Mutex<HashMap<(PayloadHash, PayloadHash), HeldEntry>>,
    /// Monotonic recency clock for held-entry LRU eviction; bumped on
    /// every (re)insert through [`Shared::store_held`].
    held_tick: AtomicU64,
    /// Journal record ids of outstanding state records (upload / mutate
    /// / release) — the replay prefix a restart would execute. Once the
    /// list outgrows [`ServerConfig::journal_compact_threshold`],
    /// [`Shared::maybe_compact_journal`] snapshots the interned-handle
    /// table and marks the superseded history completed.
    state_records: Mutex<Vec<u64>>,
    /// `mutate` frames successfully applied (including journal replays).
    mutations_applied: AtomicU64,
    /// Held-solution updates served by the incremental repair path.
    repairs: AtomicU64,
    /// Held-solution updates that fell back to a from-scratch solve.
    full_resolves: AtomicU64,
    /// Sum of per-repair refix fractions, in permille (for the mean).
    refix_sum_permille: AtomicU64,
    /// One slot per worker: the cancellation token of the solve it is
    /// running right now, so `drain` can abandon over-deadline work.
    active: Vec<Mutex<Option<CancelToken>>>,
    config: ServerConfig,
}

impl Shared {
    fn is_killed(&self) -> bool {
        self.killed.load(Ordering::SeqCst)
    }

    /// Simulates the process dying right now: no further admissions,
    /// deliveries, solves, or journal appends. Queued jobs are drained
    /// and dropped un-journaled-as-complete, so a restart recovers
    /// them. Clearing the registry drops every reply channel's only
    /// sender, so blocked receivers unpark and observe the "death"
    /// instead of waiting for frames that will never come.
    fn kill(&self) {
        self.killed.store(true, Ordering::SeqCst);
        // discard the backlog in one step; the dropped jobs' admitted
        // records stay incomplete, which is what resurrects them
        drop(self.queue.close_and_drain());
        self.registry.lock().unwrap().clear();
    }

    /// Journals completion and populates the idempotency cache for a
    /// job whose reply is about to be handed to delivery.
    ///
    /// This runs *before* [`Shared::deliver`], which gives keyed clients
    /// a real ordering guarantee: once a reply frame has been observed,
    /// a retry of the same key is answered from the cache. (A crash in
    /// the sliver between completion and delivery loses only the frame,
    /// never the answer — the client's keyed retry re-solves the same
    /// deterministic request and gets byte-identical output.)
    fn finish_job(&self, job: &Job, kind: ReplyKind, payload: String) {
        if let (Some(journal), Some(record_id)) = (&self.config.journal, job.journal_id) {
            // a failing completion append degrades durability (the job
            // would be re-run after a crash), never availability
            let _ = journal.mark_completed(record_id);
        }
        if let Some(key) = &job.idempotency_key {
            self.idempotency
                .lock()
                .unwrap()
                .insert(key.clone(), CachedReply { kind, payload });
        }
    }

    /// (Re)inserts a held solution, enforcing the cache discipline in
    /// one place: entries whose instance hash no longer resolves in the
    /// handles table are dropped (the instance was released — or mutated
    /// while this entry was checked out by a worker, losing that delta,
    /// so the retained solution can never be trusted again); at
    /// capacity the least-recently-used entry is evicted so adoption is
    /// never refused. Holding the `held` lock across the liveness check
    /// keeps a racing `release` from slipping between check and insert:
    /// release removes the handle *before* purging held entries, so
    /// whichever side wins the lock, the dead entry goes.
    fn store_held(&self, key: (PayloadHash, PayloadHash), mut entry: HeldEntry) {
        if self.config.held_capacity == 0 {
            return;
        }
        let mut held = self.held.lock().unwrap();
        if !self.handles.lock().unwrap().contains_key(&key.0) {
            return;
        }
        entry.last_used = self.held_tick.fetch_add(1, Ordering::Relaxed);
        if held.len() >= self.config.held_capacity && !held.contains_key(&key) {
            let victim = held
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            if let Some(victim) = victim {
                held.remove(&victim);
            }
        }
        held.insert(key, entry);
    }

    /// Drops every held solution keyed by the given instance hash —
    /// `release` and its journal replay call this so released instances
    /// do not pin cache capacity.
    fn purge_held(&self, hash: PayloadHash) {
        self.held.lock().unwrap().retain(|(h, _), _| *h != hash);
    }

    /// Remembers a state record's journal id for later compaction.
    fn track_state_record(&self, record_id: Option<u64>) {
        if let Some(id) = record_id {
            self.state_records.lock().unwrap().push(id);
        }
    }

    /// Compacts the journal's state-record history once it outgrows the
    /// configured threshold: every live interned instance is re-journaled
    /// as a synthetic `upload` (a snapshot of the table), then the
    /// superseded upload/mutate/release records are marked completed.
    /// Recovery replays the snapshot instead of the full mutation
    /// history, so restart cost is O(live instances + tail), not
    /// O(mutations ever applied). Crash-safe at every step: until the
    /// completions land, replay applies both the history and the
    /// snapshot, which converge (upload replay is an idempotent
    /// `or_insert`, and a replayed mutate addressing an already-moved
    /// hash fails silently).
    fn maybe_compact_journal(&self) {
        let threshold = self.config.journal_compact_threshold;
        if threshold == 0 {
            return;
        }
        let Some(journal) = &self.config.journal else {
            return;
        };
        let mut tracked = self.state_records.lock().unwrap();
        // the handles lock is held across snapshot + completions so a
        // concurrent mutate cannot journal a record against a table
        // state the snapshot does not contain
        let handles = self.handles.lock().unwrap();
        // 2× the live-table size keeps a workload with many handles and
        // few mutations from re-snapshotting on every state record
        if tracked.len() < threshold || tracked.len() < 2 * handles.len() {
            return;
        }
        let mut snapshot_ids = Vec::with_capacity(handles.len());
        for instance in handles.values() {
            let line = wire::render_upload("snapshot", instance);
            match journal.append_admitted("snapshot", Priority::Normal, None, None, &line) {
                Ok(id) => snapshot_ids.push(id),
                Err(_) => {
                    // partial snapshot: keep the full history *and* the
                    // uploads already appended (harmless duplicates on
                    // replay) and retry at the next threshold crossing
                    tracked.extend(snapshot_ids);
                    return;
                }
            }
        }
        for id in tracked.drain(..) {
            let _ = journal.mark_completed(id);
        }
        *tracked = snapshot_ids;
    }

    fn deliver(&self, conn: u64, seq: u64, line: String) {
        self.send_bounded(conn, Report::Frame { seq, line });
    }

    fn send_bounded(&self, conn: u64, mut report: Report) {
        let sender = self.registry.lock().unwrap().get(&conn).cloned();
        let Some(sender) = sender else { return };
        let deadline = Instant::now() + self.config.write_timeout;
        loop {
            match sender.try_send(report) {
                Ok(()) => return,
                // the receiver is gone; nothing to do
                Err(TrySendError::Disconnected(_)) => return,
                Err(TrySendError::Full(r)) => {
                    if Instant::now() >= deadline {
                        // slow consumer: evict the connection rather
                        // than wedging a worker — the server survives,
                        // the laggard's stream is torn down (dropping
                        // the registry entry drops the channel's only
                        // sender, so a blocked receiver unparks)
                        self.registry.lock().unwrap().remove(&conn);
                        self.evicted.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    report = r;
                    thread::sleep(DELIVER_POLL);
                }
            }
        }
    }

    fn stats(&self) -> StatsSnapshot {
        let journal = self
            .config
            .journal
            .as_ref()
            .map(|j| j.stats())
            .unwrap_or_default();
        let repairs = self.repairs.load(Ordering::Relaxed);
        StatsSnapshot {
            served: self.served.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            queue_depth: self.queue.depth(),
            queue_high_water: self.queue.high_water(),
            inflight: self.inflight.load(Ordering::Relaxed),
            workers: self.config.workers,
            queue_capacity: self.queue.capacity(),
            replayed: self.replayed.load(Ordering::Relaxed),
            journal_appended: journal.appended,
            journal_bytes: journal.bytes,
            journal_recovered: journal.recovered,
            parse_fallbacks: self.parse_fallbacks.load(Ordering::Relaxed),
            handles_held: self.handles.lock().unwrap().len() as u64,
            mutations_applied: self.mutations_applied.load(Ordering::Relaxed),
            repairs,
            full_resolves: self.full_resolves.load(Ordering::Relaxed),
            refix_mean_permille: self.refix_sum_permille.load(Ordering::Relaxed) / repairs.max(1),
        }
    }

    /// Applies a validated `mutate` frame to the interned-instance
    /// table: patch a copy of the addressed bipartite instance, re-derive
    /// its content hash, move the table entry to the new hash, and
    /// re-key any held solutions (recording the delta as pending repair
    /// work). Shared verbatim by live ingest and journal replay, so a
    /// recovered mutation stream rebuilds the exact same table.
    fn apply_mutation(
        &self,
        handle: &str,
        inserts: &[(usize, usize)],
        deletes: &[(usize, usize)],
    ) -> Result<String, ApiError> {
        let hash = wire::parse_handle(handle).expect("validated by scan_envelope");
        let mut handles = self.handles.lock().unwrap();
        let Some(existing) = handles.get(&hash) else {
            return Err(ApiError::InvalidRequest {
                field: "handle",
                reason: format!("unknown instance handle \"{handle}\"; upload it first"),
            });
        };
        let Instance::Bipartite(b) = &**existing else {
            return Err(ApiError::InvalidRequest {
                field: "handle",
                reason: format!(
                    "mutate targets a bipartite instance; \"{handle}\" holds a {}",
                    existing.kind()
                ),
            });
        };
        let mut graph = b.clone();
        let delta =
            EdgeDelta::new(&graph, inserts, deletes).map_err(|e| ApiError::InvalidRequest {
                field: "delta",
                reason: e.to_string(),
            })?;
        delta
            .apply(&mut graph)
            .map_err(|e| ApiError::InvalidRequest {
                field: "delta",
                reason: e.to_string(),
            })?;
        let edges = graph.edge_count();
        let patched = Instance::Bipartite(graph);
        let new_hash = wire::instance_fingerprint(&patched);
        handles.remove(&hash);
        handles.entry(new_hash).or_insert_with(|| Arc::new(patched));
        let held_count = handles.len();
        drop(handles);
        // move held solutions along with the instance, carrying the
        // delta as pending repair work for the next matching solve
        let mut held = self.held.lock().unwrap();
        let moved: Vec<_> = held.keys().filter(|(h, _)| *h == hash).cloned().collect();
        for key in moved {
            let mut entry = held.remove(&key).expect("key just listed");
            entry.pending.push(delta.clone());
            held.insert((new_hash, key.1), entry);
        }
        drop(held);
        self.mutations_applied.fetch_add(1, Ordering::Relaxed);
        Ok(wire::mutated_payload(
            handle,
            &wire::render_handle(new_hash),
            delta.inserts().len(),
            delta.deletes().len(),
            edges,
            held_count,
        ))
    }

    /// Journal-replay half of `upload`: re-parse and re-intern the
    /// instance, silently. Idempotent — repeated uploads of the same
    /// content land on the same table entry.
    fn replay_upload(&self, line: &str) {
        let Ok(fields) = crate::json::scan_top_level(line) else {
            return;
        };
        let Some(raw) = fields
            .iter()
            .find(|(k, _)| *k == "instance")
            .map(|(_, v)| *v)
        else {
            return;
        };
        if let Ok((instance, _)) = wire::parse_instance_traced(raw) {
            let hash = wire::instance_fingerprint(&instance);
            self.handles
                .lock()
                .unwrap()
                .entry(hash)
                .or_insert_with(|| Arc::new(instance));
        }
    }

    /// Journal-replay half of `release`: drop the interned instance if
    /// it is still present, along with any held solutions keyed by it.
    fn replay_release(&self, handle: &str) {
        if let Some(hash) = wire::parse_handle(handle) {
            self.handles.lock().unwrap().remove(&hash);
            self.purge_held(hash);
        }
    }
}

/// Solves a handle-form request through the held-solution cache. A hit
/// with pending deltas is repaired incrementally ([`HeldSolution::apply`]
/// re-fixes only the dirty constraints and re-certifies); a clean hit
/// answers from the retained, already-certified solution; a miss solves
/// from scratch and — capacity permitting — adopts the result so the
/// next mutation of this handle repairs instead of re-solving. Entries
/// are removed from the map while in use, so two workers can never
/// repair the same held solution concurrently.
fn solve_held(
    shared: &Shared,
    session: &Session,
    token: &CancelToken,
    request: &Request,
    hash: PayloadHash,
) -> String {
    let key = (hash, wire::policy_fingerprint(request));
    let entry = shared.held.lock().unwrap().remove(&key);
    match entry {
        Some(mut entry) if !entry.pending.is_empty() => {
            let before = *entry.held.stats();
            let mut payload = String::new();
            let mut stale = false;
            for delta in std::mem::take(&mut entry.pending) {
                payload = match entry.held.apply(&delta) {
                    Ok(s) => {
                        stale = false;
                        s.to_json_line()
                    }
                    Err(e) => {
                        stale = true;
                        e.to_json_line()
                    }
                };
            }
            let after = *entry.held.stats();
            shared
                .repairs
                .fetch_add(after.repairs - before.repairs, Ordering::Relaxed);
            shared.full_resolves.fetch_add(
                after.full_resolves - before.full_resolves,
                Ordering::Relaxed,
            );
            let refix_sum = after.mean_refix_fraction() * after.repairs as f64
                - before.mean_refix_fraction() * before.repairs as f64;
            shared
                .refix_sum_permille
                .fetch_add((refix_sum * 1000.0).round() as u64, Ordering::Relaxed);
            // a failed final apply leaves the entry's graph patched but
            // its retained solution certified for the PRE-delta
            // instance; re-inserting it would let the next identical
            // solve take the clean-hit branch and serve that stale
            // answer. Drop it instead — the next solve of this handle
            // falls through to a from-scratch solve of the live graph.
            if !stale {
                shared.store_held(key, entry);
            }
            payload
        }
        Some(entry) => {
            let payload = entry.held.solution().to_json_line();
            shared.store_held(key, entry);
            payload
        }
        None => match session.solve_with_cancel(request, token) {
            Ok(solution) => {
                let line = solution.to_json_line();
                if let Ok(h) = HeldSolution::adopt(session, request, solution) {
                    shared.store_held(
                        key,
                        HeldEntry {
                            held: h,
                            pending: Vec::new(),
                            last_used: 0,
                        },
                    );
                }
                line
            }
            Err(e) => e.to_json_line(),
        },
    }
}

fn worker_loop(shared: &Shared, slot: usize) {
    let session = Session::with_threads(1);
    while let Some(mut job) = shared.queue.pop() {
        if shared.is_killed() {
            // the "dead" process does nothing with remaining queued
            // work: drop it on the floor (draining so every worker
            // terminates) — the journal resurrects it on restart
            continue;
        }
        shared.inflight.fetch_add(1, Ordering::Relaxed);
        let queued_ns = job
            .enqueued
            .map(|t| t.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
        let started = shared.config.record_timings.then(Instant::now);
        let timing = |started: Option<Instant>| match (queued_ns, started) {
            (Some(queued_ns), Some(started)) => Some(Timing {
                queued_ns,
                solve_ns: started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
            }),
            _ => None,
        };
        // in-queue deadline enforcement: an expired job is answered with
        // a typed error frame and never costs a solve — this worker is
        // immediately free for the next job
        if let Some((expiry, deadline_ms)) = job.deadline {
            if Instant::now() >= expiry {
                let payload = ApiError::DeadlineExceeded {
                    stage: "queued",
                    deadline_ms,
                }
                .to_json_line();
                let frame = wire::error_frame(&job.id, job.seq, timing(started), &payload);
                shared.finish_job(&job, ReplyKind::Error, payload);
                shared.deliver(job.conn, job.seq, frame);
                shared.served.fetch_add(1, Ordering::Relaxed);
                shared.inflight.fetch_sub(1, Ordering::Relaxed);
                continue;
            }
        }
        // seeded fault injection (no-ops when chaos is unarmed)
        let mut inject_panic = false;
        if let Some(c) = &shared.config.chaos {
            if c.fires(c.worker_stall, chaos::SITE_WORKER_STALL, job.conn, job.seq) {
                thread::sleep(Duration::from_millis(c.stall_ms));
            }
            inject_panic = c.fires(c.worker_panic, chaos::SITE_WORKER_PANIC, job.conn, job.seq);
        }
        // every solve runs under a cancellation token: the deadline arms
        // it absolutely (counted from admission), and `Server::drain`
        // can trip it to abandon work at the next checkpoint
        let token = match job.deadline {
            Some((expiry, _)) => CancelToken::with_deadline(expiry),
            None => CancelToken::new(),
        };
        *shared.active[slot].lock().unwrap() = Some(token.clone());
        let prescan = job.prescan.take();
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            if inject_panic {
                panic!("chaos: injected worker panic");
            }
            let solve = |request: &Request| {
                session
                    .solve_with_cancel(request, &token)
                    .map(|s| s.to_json_line())
                    .unwrap_or_else(|e| e.to_json_line())
            };
            match &job.payload {
                Payload::Wire(line) => {
                    let parsed = match prescan {
                        Some(pre) => wire::parse_request_prescanned(line, pre),
                        None => wire::parse_request_traced(line),
                    };
                    match parsed {
                        Ok((_, request, fast)) => {
                            if !fast {
                                shared.parse_fallbacks.fetch_add(1, Ordering::Relaxed);
                            }
                            solve(&request)
                        }
                        Err(e) => e.to_json_line(),
                    }
                }
                Payload::Parsed(request) => match job.handle_hash {
                    Some(hash) => solve_held(shared, &session, &token, request, hash),
                    None => solve(request),
                },
            }
        }));
        *shared.active[slot].lock().unwrap() = None;
        // seeded `kill -9` simulation: the process "dies" after the
        // solve but before the reply is delivered or the completion is
        // journaled — the exact window recovery must cover. The job's
        // admitted record stays incomplete, so a restart re-runs it.
        if let Some(c) = &shared.config.chaos {
            if c.fires(c.process_kill, chaos::SITE_PROCESS_KILL, job.conn, job.seq) {
                shared.kill();
                shared.inflight.fetch_sub(1, Ordering::Relaxed);
                continue;
            }
        }
        let payload = outcome.unwrap_or_else(|cause| {
            let detail: &str = if let Some(s) = cause.downcast_ref::<&str>() {
                s
            } else if let Some(s) = cause.downcast_ref::<String>() {
                s
            } else {
                "worker panicked while solving"
            };
            wire::internal_panic_payload(detail)
        });
        let solution = payload.starts_with("{\"event\":\"solution\"");
        let frame = if solution {
            wire::solution_frame(&job.id, job.seq, timing(started), &payload)
        } else {
            wire::error_frame(&job.id, job.seq, timing(started), &payload)
        };
        let kind = if solution {
            ReplyKind::Solution
        } else {
            ReplyKind::Error
        };
        shared.finish_job(&job, kind, payload);
        shared.deliver(job.conn, job.seq, frame);
        shared.served.fetch_add(1, Ordering::Relaxed);
        shared.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The running service: global queue + persistent worker pool.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts the worker pool. When the configuration carries a
    /// journal, every job the journal recovered (admitted before a
    /// crash, never completed) is re-enqueued immediately, in original
    /// admission order, on an internal connection — its reply is not
    /// streamed anywhere, but solving it journals the completion and
    /// populates the idempotency cache, so a reconnecting client's
    /// retry is answered `"replayed":true` from the recovered result.
    pub fn start(config: ServerConfig) -> Self {
        let workers = config.workers.max(1);
        let idempotency = IdempotencyCache::new(config.idempotency_capacity);
        let shared = Arc::new(Shared {
            queue: JobQueue::new(config.queue_capacity),
            registry: Mutex::new(HashMap::new()),
            served: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            replayed: AtomicU64::new(0),
            inflight: AtomicUsize::new(0),
            next_conn: AtomicU64::new(0),
            killed: AtomicBool::new(false),
            idempotency: Mutex::new(idempotency),
            handles: Mutex::new(HashMap::new()),
            held: Mutex::new(HashMap::new()),
            held_tick: AtomicU64::new(0),
            state_records: Mutex::new(Vec::new()),
            parse_fallbacks: AtomicU64::new(0),
            mutations_applied: AtomicU64::new(0),
            repairs: AtomicU64::new(0),
            full_resolves: AtomicU64::new(0),
            refix_sum_permille: AtomicU64::new(0),
            active: (0..workers).map(|_| Mutex::new(None)).collect(),
            config: ServerConfig { workers, ..config },
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("splitd-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn worker")
            })
            .collect();
        let server = Server {
            shared,
            workers: handles,
        };
        server.reenqueue_recovered();
        server
    }

    /// Drains the journal's recovered jobs into the queue on the
    /// reserved internal connection. Deadlines are dropped — the
    /// admission clock they were counted from died with the old
    /// process — and the blocking push means a recovered backlog larger
    /// than the queue simply feeds the (already running) workers at
    /// their own pace.
    fn reenqueue_recovered(&self) {
        let Some(journal) = &self.shared.config.journal else {
            return;
        };
        let mut seq = 0u64;
        for rec in journal.take_recovered() {
            // state records (upload / mutate / release) were journaled
            // at admission and deliberately never marked completed, so
            // every restart sees them here. Replaying them inline — in
            // admission order, before any recovered solve is pushed —
            // rebuilds the interned-handle table exactly as the old
            // process held it. Replays answer nobody and swallow
            // errors: a mutate that failed live fails identically here.
            match wire::scan_envelope(&rec.line) {
                Ok(ClientFrame::Upload { .. }) => {
                    self.shared.replay_upload(&rec.line);
                    self.shared.track_state_record(Some(rec.record.record_id));
                    continue;
                }
                Ok(ClientFrame::Release { handle, .. }) => {
                    self.shared.replay_release(&handle);
                    self.shared.track_state_record(Some(rec.record.record_id));
                    continue;
                }
                Ok(ClientFrame::Mutate { handle, .. }) => {
                    if let Ok(fields) = crate::json::scan_top_level(&rec.line) {
                        if let Ok((inserts, deletes)) = wire::parse_mutate_edits(&fields) {
                            let outcome = self.shared.apply_mutation(&handle, &inserts, &deletes);
                            // a keyed mutation that applied (live or
                            // here) must keep replaying its reply after
                            // the crash — the payload is deterministic,
                            // so the recovered bytes match the originals
                            if let (Ok(payload), Some(key)) = (outcome, &rec.record.idempotency_key)
                            {
                                self.shared.idempotency.lock().unwrap().insert(
                                    key.clone(),
                                    CachedReply {
                                        kind: ReplyKind::Mutated,
                                        payload,
                                    },
                                );
                            }
                        }
                    }
                    self.shared.track_state_record(Some(rec.record.record_id));
                    continue;
                }
                _ => {}
            }
            let job = Job {
                conn: RECOVERY_CONN,
                seq,
                id: rec.record.id,
                payload: Payload::Wire(rec.line),
                enqueued: self.shared.config.record_timings.then(Instant::now),
                deadline: None,
                journal_id: Some(rec.record.record_id),
                idempotency_key: rec.record.idempotency_key,
                prescan: None,
                handle_hash: None,
            };
            seq += 1;
            if self
                .shared
                .queue
                .push_blocking(rec.record.priority, job)
                .is_err()
            {
                // queue closed (halt/shutdown raced startup): leave the
                // record incomplete for the next restart
                return;
            }
        }
        // a crash can leave an arbitrarily long replayed history; fold
        // it into a fresh snapshot now rather than carrying it forward
        self.shared.maybe_compact_journal();
    }

    /// Starts a default-configured server.
    pub fn start_default() -> Self {
        Self::start(ServerConfig::default())
    }

    /// Opens a connection, returning its ingest and reporting halves.
    pub fn connect(&self) -> Connection {
        let conn = self.shared.next_conn.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::sync_channel(self.shared.config.reply_buffer.max(1));
        // the registry entry is the channel's ONLY sender: removing it
        // (eviction, or the receiver's own teardown) disconnects the
        // channel, so a blocked `FrameReceiver::recv` always unparks
        self.shared.registry.lock().unwrap().insert(conn, tx);
        Connection {
            submitter: Submitter {
                shared: Arc::clone(&self.shared),
                conn,
                next_seq: 0,
            },
            receiver: FrameReceiver {
                shared: Arc::clone(&self.shared),
                conn,
                rx,
                buffer: BTreeMap::new(),
                next_emit: 0,
                total: None,
            },
        }
    }

    /// A point-in-time service snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats()
    }

    /// The active configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.shared.config
    }

    /// Closes the queue and waits — bounded by
    /// [`ServerConfig::drain_deadline`] — for every queued and in-flight
    /// job to finish. Past the deadline, in-flight solves are cancelled
    /// at their next cooperative checkpoint (each reports a typed
    /// `deadline-exceeded` reply) and given a short grace period.
    /// Returns `true` when the server fully quiesced.
    pub fn drain(&self) -> bool {
        self.shared.queue.close();
        let deadline = Instant::now() + self.shared.config.drain_deadline;
        loop {
            if self.shared.queue.depth() == 0 && self.shared.inflight.load(Ordering::Relaxed) == 0 {
                return true;
            }
            if Instant::now() >= deadline {
                break;
            }
            thread::sleep(DELIVER_POLL);
        }
        // over the drain deadline: abandon in-flight work cooperatively
        for slot in &self.shared.active {
            if let Some(token) = slot.lock().unwrap().as_ref() {
                token.cancel();
            }
        }
        let grace = Instant::now() + self.shared.config.write_timeout;
        while Instant::now() < grace {
            if self.shared.queue.depth() == 0 && self.shared.inflight.load(Ordering::Relaxed) == 0 {
                return true;
            }
            thread::sleep(DELIVER_POLL);
        }
        false
    }

    /// Drains (see [`drain`](Self::drain)) and joins the workers. If the
    /// drain deadline expires with a worker still wedged between
    /// checkpoints, the handles are dropped instead — the daemon's exit
    /// is bounded; it never hangs on a stuck solve.
    pub fn shutdown(self) {
        if self.drain() {
            for handle in self.workers {
                let _ = handle.join();
            }
        }
    }

    /// Whether the server has "died" — the seeded `process_kill` fault
    /// fired, or [`Server::halt`] was called. A killed server admits
    /// nothing, delivers nothing, and journals nothing further; restart
    /// it on the same journal to recover.
    pub fn killed(&self) -> bool {
        self.shared.is_killed()
    }

    /// Kills the server abruptly — the in-process analogue of `kill
    /// -9`, used by the recovery conformance group and crash tests.
    /// Queued and in-flight work is abandoned without replies or
    /// journal completions (their admitted records stay incomplete, so
    /// a restart on the same journal re-runs them); workers are joined
    /// so the "dead" process holds no running threads.
    pub fn halt(self) {
        self.shared.kill();
        for handle in self.workers {
            let _ = handle.join();
        }
    }
}

/// A client connection: ingest + reporting halves, split with
/// [`Connection::split`] so a transport can run them on separate
/// threads.
pub struct Connection {
    submitter: Submitter,
    receiver: FrameReceiver,
}

impl Connection {
    /// Splits into the ingest and reporting halves.
    pub fn split(self) -> (Submitter, FrameReceiver) {
        (self.submitter, self.receiver)
    }
}

/// Result of submitting one input line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Submitted {
    /// A request was admitted to the queue; its reply arrives later.
    Queued,
    /// An immediate reply frame was generated (heartbeat, typed parse
    /// error, or admission reject).
    Replied,
    /// The line was blank and ignored (no sequence number consumed).
    Skipped,
    /// A `shutdown` frame: the caller should stop reading input and
    /// call [`Submitter::finish`].
    Shutdown,
}

/// The ingest half of a connection.
pub struct Submitter {
    shared: Arc<Shared>,
    conn: u64,
    next_seq: u64,
}

impl Submitter {
    fn send_now(&self, seq: u64, line: String) {
        // routed through the bounded delivery path: an ingest thread
        // racing a slow consumer backs off and evicts exactly like a
        // worker would, instead of wedging on its own reply buffer
        self.shared.deliver(self.conn, seq, line);
    }

    fn reject(&self, id: &str, seq: u64, depth: usize) {
        self.shared.rejected.fetch_add(1, Ordering::Relaxed);
        let payload = ApiError::Overloaded {
            queue_depth: depth,
            capacity: self.shared.queue.capacity(),
            retry_after_ms: self.shared.config.retry_after_ms,
        }
        .to_json_line();
        self.send_now(seq, wire::error_frame(id, seq, None, &payload));
    }

    fn enqueue(
        &self,
        envelope: Envelope,
        seq: u64,
        payload: Payload,
        prescan: Option<wire::PreScan>,
    ) -> Submitted {
        if self.shared.is_killed() {
            // a dead process answers nothing
            return Submitted::Skipped;
        }
        // idempotent retry: a key whose reply was already delivered is
        // answered from the cache — no admission, no journal append, no
        // second solve
        if let Some(key) = envelope.idempotency_key.as_deref() {
            if let Some(hit) = self.shared.idempotency.lock().unwrap().get(key) {
                self.shared.replayed.fetch_add(1, Ordering::Relaxed);
                let frame = match hit.kind {
                    ReplyKind::Solution => {
                        wire::replayed_frame(true, &envelope.id, seq, &hit.payload)
                    }
                    ReplyKind::Error => {
                        wire::replayed_frame(false, &envelope.id, seq, &hit.payload)
                    }
                    // a request reusing a key last answered by a mutate
                    // replays the mutated frame — the key identifies the
                    // delivered reply, not the frame type of the retry
                    ReplyKind::Mutated => {
                        wire::replayed_mutated_frame(&envelope.id, seq, &hit.payload)
                    }
                };
                self.send_now(seq, frame);
                return Submitted::Replied;
            }
        }
        // write-ahead: the admission is journaled before the job can
        // reach a worker. An append failure degrades durability (this
        // job would not survive a crash), never availability. Parsed
        // requests are fingerprinted structurally so the (much more
        // expensive) canonical rendering happens only for payloads the
        // journal has not interned yet; the envelope embedded in that
        // rendering is a placeholder because recovery takes id,
        // priority, and key from the admitted record, never the line.
        let mut journal_id = None;
        if let Some(journal) = &self.shared.config.journal {
            journal_id = match &payload {
                Payload::Wire(line) => journal.append_admitted(
                    &envelope.id,
                    envelope.priority,
                    envelope.deadline_ms,
                    envelope.idempotency_key.as_deref(),
                    line,
                ),
                Payload::Parsed(request) => journal.append_admitted_interned(
                    &envelope.id,
                    envelope.priority,
                    envelope.deadline_ms,
                    envelope.idempotency_key.as_deref(),
                    wire::request_fingerprint(request),
                    || wire::render_request("interned", Priority::Normal, request),
                ),
            }
            .ok();
        }
        let job = Job {
            conn: self.conn,
            seq,
            id: envelope.id,
            payload,
            enqueued: self.shared.config.record_timings.then(Instant::now),
            deadline: envelope
                .deadline_ms
                .map(|ms| (Instant::now() + Duration::from_millis(ms), ms)),
            journal_id,
            idempotency_key: envelope.idempotency_key,
            prescan,
            handle_hash: envelope.handle.as_deref().and_then(wire::parse_handle),
        };
        let refused = match self.shared.config.admission {
            Admission::Reject => match self.shared.queue.try_push(envelope.priority, job) {
                Ok(()) => None,
                Err(PushError::Full { job, depth }) => Some((job, depth)),
                Err(PushError::Closed(job)) => {
                    let depth = self.shared.queue.depth();
                    Some((job, depth))
                }
            },
            Admission::Block => match self.shared.queue.push_blocking(envelope.priority, job) {
                Ok(()) => None,
                // queue closed mid-shutdown: report as a reject
                Err(job) => {
                    let depth = self.shared.queue.depth();
                    Some((job, depth))
                }
            },
        };
        let Some((job, depth)) = refused else {
            return Submitted::Queued;
        };
        if self.shared.is_killed() {
            // the queue refused because the process "died" mid-push:
            // stay silent and leave the journal record incomplete, so
            // the restart recovers exactly this job
            return Submitted::Skipped;
        }
        // a definitive reject reaches the client, so the journal must
        // not re-run the job after a crash: mark it completed
        if let (Some(journal), Some(record_id)) = (&self.shared.config.journal, job.journal_id) {
            let _ = journal.mark_completed(record_id);
        }
        self.reject(&job.id, seq, depth);
        Submitted::Replied
    }

    /// Submits one raw input line, driving the full ingest path:
    /// envelope scan, admission control, immediate replies for pings and
    /// malformed frames. Blank lines are skipped; every other line
    /// consumes exactly one sequence number.
    pub fn submit_line(&mut self, line: &str) -> Submitted {
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.trim().is_empty() {
            return Submitted::Skipped;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        if trimmed.len() > self.shared.config.max_frame_bytes {
            let payload = ApiError::InvalidRequest {
                field: "frame",
                reason: format!(
                    "frame of {} bytes exceeds the {}-byte limit",
                    trimmed.len(),
                    self.shared.config.max_frame_bytes
                ),
            }
            .to_json_line();
            self.send_now(seq, wire::error_frame("", seq, None, &payload));
            return Submitted::Replied;
        }
        match wire::scan_envelope_prescanned(trimmed) {
            Ok((ClientFrame::Request(envelope), prescan)) => {
                if envelope.handle.is_some() {
                    self.enqueue_handle(envelope, seq, trimmed)
                } else {
                    self.enqueue(envelope, seq, Payload::Wire(trimmed.to_owned()), prescan)
                }
            }
            Ok((ClientFrame::Upload { id }, _)) => self.upload(&id, seq, trimmed),
            Ok((ClientFrame::Release { id, handle }, _)) => {
                self.release(&id, seq, trimmed, &handle)
            }
            Ok((
                ClientFrame::Mutate {
                    id,
                    handle,
                    idempotency_key,
                },
                _,
            )) => self.mutate(&id, seq, trimmed, &handle, idempotency_key),
            Ok((ClientFrame::Ping { id }, _)) => {
                let frame = wire::heartbeat_frame(&id, seq, self.shared.stats());
                self.send_now(seq, frame);
                Submitted::Replied
            }
            Ok((ClientFrame::Shutdown, _)) => {
                // the shutdown frame itself gets no reply; hand its
                // sequence number back
                self.next_seq = seq;
                Submitted::Shutdown
            }
            Err(e) => {
                self.send_now(seq, wire::error_frame("", seq, None, &e.to_json_line()));
                Submitted::Replied
            }
        }
    }

    /// Submits one raw input line that may not be valid UTF-8. Invalid
    /// bytes become a typed `invalid-request` error frame — a client
    /// sending binary garbage gets an answer, not a dropped connection.
    pub fn submit_bytes(&mut self, bytes: &[u8]) -> Submitted {
        match std::str::from_utf8(bytes) {
            Ok(line) => self.submit_line(line),
            Err(e) => {
                let seq = self.next_seq;
                self.next_seq += 1;
                let payload = ApiError::InvalidRequest {
                    field: "frame",
                    reason: format!("frame is not valid UTF-8: {e}"),
                }
                .to_json_line();
                self.send_now(seq, wire::error_frame("", seq, None, &payload));
                Submitted::Replied
            }
        }
    }

    /// Submits an already-typed request, bypassing the wire codec — the
    /// in-process fast path. Admission control, journaling, and
    /// priority scheduling apply exactly as for wire requests. This
    /// path never attaches an idempotency key; use
    /// [`wire::render_request_with_key`] + [`Submitter::submit_line`]
    /// for keyed submissions.
    pub fn submit_request(&mut self, id: &str, priority: Priority, request: Request) -> Submitted {
        let seq = self.next_seq;
        self.next_seq += 1;
        let deadline_ms = request.budget().deadline_ms;
        self.enqueue(
            Envelope {
                id: id.to_owned(),
                priority,
                deadline_ms,
                idempotency_key: None,
                handle: None,
            },
            seq,
            Payload::Parsed(Box::new(request)),
            None,
        )
    }

    /// Handles an `upload` frame: parse the inline instance, intern it
    /// keyed by its content hash, and answer with an `uploaded` frame
    /// carrying the handle. Idempotent by construction — re-uploading
    /// the same content lands on the same table entry and returns the
    /// same handle. Processed inline on the ingest thread (like pings),
    /// so a request referencing a just-uploaded handle can never race a
    /// queued upload job.
    fn upload(&self, id: &str, seq: u64, line: &str) -> Submitted {
        if self.shared.is_killed() {
            return Submitted::Skipped;
        }
        let fields = crate::json::scan_top_level(line).expect("validated by scan_envelope");
        let raw = fields
            .iter()
            .find(|(k, _)| *k == "instance")
            .map(|(_, v)| *v)
            .expect("instance presence checked by scan_envelope");
        match wire::parse_instance_traced(raw) {
            Ok((instance, fast)) => {
                if !fast {
                    self.shared.parse_fallbacks.fetch_add(1, Ordering::Relaxed);
                }
                let hash = wire::instance_fingerprint(&instance);
                let handle = wire::render_handle(hash);
                let mut handles = self.shared.handles.lock().unwrap();
                let entry = handles.entry(hash).or_insert_with(|| Arc::new(instance));
                let shared_instance = Arc::clone(entry);
                let held = handles.len();
                drop(handles);
                // journaled as a state record — appended at admission,
                // left incomplete until compaction folds it into a
                // snapshot — so every restart replays the upload and
                // the handle survives a crash
                if let Some(journal) = &self.shared.config.journal {
                    let record = journal
                        .append_admitted(id, Priority::Normal, None, None, line)
                        .ok();
                    self.shared.track_state_record(record);
                    self.shared.maybe_compact_journal();
                }
                let payload = wire::uploaded_payload(&handle, &shared_instance, held);
                self.send_now(seq, wire::uploaded_frame(id, seq, &payload));
                Submitted::Replied
            }
            Err(e) => {
                self.send_now(seq, wire::error_frame(id, seq, None, &e.to_json_line()));
                Submitted::Replied
            }
        }
    }

    /// Handles a `release` frame: drop the interned instance. In-flight
    /// requests that already resolved the handle keep their `Arc` — the
    /// graph is freed once the last of them finishes.
    fn release(&self, id: &str, seq: u64, line: &str, handle: &str) -> Submitted {
        if self.shared.is_killed() {
            return Submitted::Skipped;
        }
        let hash = wire::parse_handle(handle).expect("validated by scan_envelope");
        let (removed, held) = {
            let mut handles = self.shared.handles.lock().unwrap();
            (handles.remove(&hash).is_some(), handles.len())
        };
        if removed {
            // a released instance must not pin held-solution capacity
            self.shared.purge_held(hash);
            // state record (see `upload`): replayed on restart so a
            // released handle stays released across recovery
            if let Some(journal) = &self.shared.config.journal {
                let record = journal
                    .append_admitted(id, Priority::Normal, None, None, line)
                    .ok();
                self.shared.track_state_record(record);
                self.shared.maybe_compact_journal();
            }
            let payload = wire::released_payload(handle, held);
            self.send_now(seq, wire::released_frame(id, seq, &payload));
        } else {
            let payload = ApiError::InvalidRequest {
                field: "handle",
                reason: format!("unknown instance handle \"{handle}\""),
            }
            .to_json_line();
            self.send_now(seq, wire::error_frame(id, seq, None, &payload));
        }
        Submitted::Replied
    }

    /// Handles a `mutate` frame: patch the addressed interned instance
    /// (edge inserts/deletes), re-derive its content hash, and answer
    /// with a `mutated` frame naming the new handle. Processed inline
    /// on the ingest thread like `upload`, so a solve submitted after
    /// the mutation can never race it. Applied mutations are journaled
    /// as state records (left incomplete until compaction) so recovery
    /// replays the mutation stream in admission order.
    ///
    /// A mutation moves the handle, so a client whose `mutated` reply
    /// was lost cannot blindly retry — the old handle is gone. A keyed
    /// mutate closes that gap: the applied reply is cached under the
    /// key (and under the journal record across crashes), and a retry
    /// replays it byte-for-byte instead of failing `unknown instance
    /// handle`.
    fn mutate(
        &self,
        id: &str,
        seq: u64,
        line: &str,
        handle: &str,
        idempotency_key: Option<String>,
    ) -> Submitted {
        if self.shared.is_killed() {
            return Submitted::Skipped;
        }
        if let Some(key) = idempotency_key.as_deref() {
            if let Some(hit) = self.shared.idempotency.lock().unwrap().get(key) {
                self.shared.replayed.fetch_add(1, Ordering::Relaxed);
                let frame = match hit.kind {
                    ReplyKind::Mutated => wire::replayed_mutated_frame(id, seq, &hit.payload),
                    ReplyKind::Solution => wire::replayed_frame(true, id, seq, &hit.payload),
                    ReplyKind::Error => wire::replayed_frame(false, id, seq, &hit.payload),
                };
                self.send_now(seq, frame);
                return Submitted::Replied;
            }
        }
        let fields = crate::json::scan_top_level(line).expect("validated by scan_envelope");
        let (inserts, deletes) = match wire::parse_mutate_edits(&fields) {
            Ok(edits) => edits,
            Err(e) => {
                self.send_now(seq, wire::error_frame(id, seq, None, &e.to_json_line()));
                return Submitted::Replied;
            }
        };
        match self.shared.apply_mutation(handle, &inserts, &deletes) {
            Ok(payload) => {
                if let Some(journal) = &self.shared.config.journal {
                    let record = journal
                        .append_admitted(
                            id,
                            Priority::Normal,
                            None,
                            idempotency_key.as_deref(),
                            line,
                        )
                        .ok();
                    self.shared.track_state_record(record);
                    self.shared.maybe_compact_journal();
                }
                if let Some(key) = idempotency_key {
                    self.shared.idempotency.lock().unwrap().insert(
                        key,
                        CachedReply {
                            kind: ReplyKind::Mutated,
                            payload: payload.clone(),
                        },
                    );
                }
                self.send_now(seq, wire::mutated_frame(id, seq, &payload));
            }
            Err(e) => {
                self.send_now(seq, wire::error_frame(id, seq, None, &e.to_json_line()));
            }
        }
        Submitted::Replied
    }

    /// Admits a handle-form request: the handle is resolved against the
    /// interned table *at ingest* and the job is queued already-typed
    /// (sharing the interned `Arc<Instance>`), so workers pay no codec
    /// or graph-build cost and multi-worker scheduling cannot reorder a
    /// solve ahead of the upload it references.
    fn enqueue_handle(&self, envelope: Envelope, seq: u64, line: &str) -> Submitted {
        let handle = envelope.handle.as_deref().expect("checked by submit_line");
        let hash = wire::parse_handle(handle).expect("validated by scan_envelope");
        let instance = self
            .shared
            .handles
            .lock()
            .unwrap()
            .get(&hash)
            .map(Arc::clone);
        let Some(instance) = instance else {
            let payload = ApiError::InvalidRequest {
                field: "handle",
                reason: format!("unknown instance handle \"{handle}\"; upload it first"),
            }
            .to_json_line();
            self.send_now(seq, wire::error_frame(&envelope.id, seq, None, &payload));
            return Submitted::Replied;
        };
        match wire::parse_request_with_instance(line, instance) {
            Ok((_, request)) => {
                self.enqueue(envelope, seq, Payload::Parsed(Box::new(request)), None)
            }
            Err(e) => {
                self.send_now(
                    seq,
                    wire::error_frame(&envelope.id, seq, None, &e.to_json_line()),
                );
                Submitted::Replied
            }
        }
    }

    /// Signals end of input: the reporting half will finish after
    /// delivering every outstanding reply. Consumes the submitter.
    /// Bounded like every delivery — a consumer too slow to accept even
    /// the end-of-input marker is evicted, never waited on forever.
    pub fn finish(self) {
        self.shared.send_bounded(
            self.conn,
            Report::Finished {
                total: self.next_seq,
            },
        );
    }
}

/// The reporting half of a connection: yields reply frames **strictly in
/// submission order**, reordering worker completions as needed.
pub struct FrameReceiver {
    shared: Arc<Shared>,
    conn: u64,
    rx: Receiver<Report>,
    buffer: BTreeMap<u64, String>,
    next_emit: u64,
    total: Option<u64>,
}

/// Outcome of one non-blocking [`FrameReceiver::try_recv`] poll.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Polled {
    /// The next in-order reply frame.
    Frame(String),
    /// No frame is ready yet; poll again later.
    Pending,
    /// The stream is complete: the submitter finished and every admitted
    /// line's reply has been delivered (or every sender is gone).
    Finished,
}

impl FrameReceiver {
    /// Returns the next in-order reply frame, blocking until it is
    /// available. Returns `None` once the submitter has called
    /// [`Submitter::finish`] **and** every admitted line's reply has
    /// been delivered.
    pub fn recv(&mut self) -> Option<String> {
        loop {
            if let Some(frame) = self.buffer.remove(&self.next_emit) {
                self.next_emit += 1;
                return Some(frame);
            }
            if self.total == Some(self.next_emit) {
                return None;
            }
            match self.rx.recv() {
                Ok(Report::Frame { seq, line }) => {
                    self.buffer.insert(seq, line);
                }
                Ok(Report::Finished { total }) => self.total = Some(total),
                // every sender gone without a Finished marker: give up
                // rather than hang
                Err(_) => return None,
            }
        }
    }

    /// Non-blocking variant of [`recv`](Self::recv), for clients that
    /// multiplex the reply stream into their own event loop. Drains
    /// everything already reported, then returns [`Polled::Pending`]
    /// instead of parking. A polling client never blocks on the
    /// reporting channel, so workers deliver frames without paying a
    /// thread wakeup per reply — under saturation this is the cheap way
    /// to consume the stream.
    pub fn try_recv(&mut self) -> Polled {
        loop {
            if let Some(frame) = self.buffer.remove(&self.next_emit) {
                self.next_emit += 1;
                return Polled::Frame(frame);
            }
            if self.total == Some(self.next_emit) {
                return Polled::Finished;
            }
            match self.rx.try_recv() {
                Ok(Report::Frame { seq, line }) => {
                    self.buffer.insert(seq, line);
                }
                Ok(Report::Finished { total }) => self.total = Some(total),
                Err(mpsc::TryRecvError::Empty) => return Polled::Pending,
                Err(mpsc::TryRecvError::Disconnected) => return Polled::Finished,
            }
        }
    }
}

impl Iterator for FrameReceiver {
    type Item = String;

    fn next(&mut self) -> Option<String> {
        self.recv()
    }
}

impl Drop for FrameReceiver {
    fn drop(&mut self) {
        self.shared.registry.lock().unwrap().remove(&self.conn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::split_reply;
    use splitgraph::generators;
    use splitting_api::Problem;

    fn quiet_config() -> ServerConfig {
        ServerConfig {
            record_timings: false,
            ..ServerConfig::default()
        }
    }

    #[test]
    fn requests_round_trip_through_the_pool() {
        let server = Server::start(quiet_config());
        let (mut tx, rx) = server.connect().split();
        let g = generators::cycle(8).unwrap();
        for i in 0..4 {
            let req = Request::new(
                Problem::Mis {
                    base_degree: Some(8),
                },
                g.clone(),
            )
            .seed(i);
            assert_eq!(
                tx.submit_request(&format!("r{i}"), Priority::Normal, req),
                Submitted::Queued
            );
        }
        tx.finish();
        let frames: Vec<String> = rx.collect();
        assert_eq!(frames.len(), 4);
        for (i, frame) in frames.iter().enumerate() {
            let reply = split_reply(frame).expect(frame);
            assert_eq!(reply.id, format!("r{i}"), "ordered by submission");
            assert_eq!(reply.seq, i as u64);
            assert_eq!(reply.frame_type, "solution");
            // parity with the direct session
            let direct = Session::with_threads(1)
                .solve(
                    &Request::new(
                        Problem::Mis {
                            base_degree: Some(8),
                        },
                        g.clone(),
                    )
                    .seed(i as u64),
                )
                .unwrap()
                .to_json_line();
            assert_eq!(reply.payload, Some(direct.as_str()), "byte parity");
        }
        server.shutdown();
    }

    #[test]
    fn wire_lines_and_pings_interleave_in_order() {
        let server = Server::start(quiet_config());
        let (mut tx, rx) = server.connect().split();
        let line = r#"{"v":1,"type":"request","id":"w1","problem":{"name":"mis","base_degree":8},"instance":{"kind":"host","nodes":4,"edges":[[0,1],[1,2],[2,3],[3,0]]}}"#;
        assert_eq!(tx.submit_line(line), Submitted::Queued);
        assert_eq!(tx.submit_line("\n"), Submitted::Skipped);
        assert_eq!(
            tx.submit_line(r#"{"v":1,"type":"ping","id":"p"}"#),
            Submitted::Replied
        );
        assert_eq!(tx.submit_line("garbage"), Submitted::Replied);
        assert_eq!(
            tx.submit_line(r#"{"v":1,"type":"shutdown"}"#),
            Submitted::Shutdown
        );
        tx.finish();
        let frames: Vec<String> = rx.collect();
        assert_eq!(frames.len(), 3);
        let kinds: Vec<_> = frames
            .iter()
            .map(|f| split_reply(f).unwrap().frame_type)
            .collect();
        assert_eq!(kinds, ["solution", "heartbeat", "error"]);
        server.shutdown();
    }

    #[test]
    fn overload_rejects_with_typed_error() {
        // a server whose queue can hold one job and whose single worker
        // is blocked by an expensive request will reject the overflow
        let server = Server::start(ServerConfig {
            workers: 1,
            queue_capacity: 1,
            record_timings: false,
            ..ServerConfig::default()
        });
        let (mut tx, mut rx) = server.connect().split();
        // each solve costs far more than a submission, so with the queue
        // bound at 1 the burst below must overflow admission
        let g = generators::cycle(4096).unwrap();
        let mut queued = 0;
        let mut rejected = 0;
        for i in 0..32 {
            let req = Request::new(
                Problem::Mis {
                    base_degree: Some(8),
                },
                g.clone(),
            )
            .seed(i);
            tx.submit_request(&format!("r{i}"), Priority::Normal, req);
        }
        tx.finish();
        while let Some(frame) = rx.recv() {
            let reply = split_reply(&frame).unwrap();
            match reply.frame_type.as_str() {
                "solution" => queued += 1,
                "error" => {
                    assert!(
                        reply.payload.unwrap().contains("\"kind\":\"overloaded\""),
                        "{frame}"
                    );
                    rejected += 1;
                }
                other => panic!("unexpected frame type {other}"),
            }
        }
        assert_eq!(queued + rejected, 32);
        assert!(queued >= 1, "the first job must be admitted");
        assert!(
            rejected >= 1,
            "a 32-burst into a 1-slot queue must overflow"
        );
        let stats = server.stats();
        assert_eq!(stats.rejected, rejected);
        server.shutdown();
    }

    #[test]
    fn replies_stay_in_submission_order_across_priorities() {
        // priority reorders *solving* (pinned at the queue level); the
        // reporting stream must still come back in submission order
        let server = Server::start(quiet_config());
        let (mut tx, rx) = server.connect().split();
        let g = generators::cycle(8).unwrap();
        for i in 0..3 {
            tx.submit_request(
                &format!("low{i}"),
                Priority::Low,
                Request::new(
                    Problem::Mis {
                        base_degree: Some(8),
                    },
                    g.clone(),
                )
                .seed(i),
            );
        }
        tx.submit_request(
            "high",
            Priority::High,
            Request::new(
                Problem::Mis {
                    base_degree: Some(8),
                },
                g.clone(),
            )
            .seed(99),
        );
        tx.finish();
        let ids: Vec<_> = rx.map(|f| split_reply(&f).unwrap().id).collect();
        assert_eq!(ids, ["low0", "low1", "low2", "high"]);
        server.shutdown();
    }

    #[test]
    fn worker_panic_becomes_internal_panic_frame() {
        let server = Server::start(quiet_config());
        let (mut tx, mut rx) = server.connect().split();
        // a multigraph instance whose endpoints are valid cannot panic;
        // force one via the parsed path with an instance the pipeline
        // chokes on is not possible either (typed errors) — so drive the
        // panic payload renderer directly and assert the frame shape,
        // then pin that a healthy server survives a poisoned job slot.
        let payload = wire::internal_panic_payload("boom");
        assert_eq!(
            payload,
            r#"{"event":"error","kind":"internal-panic","detail":"boom"}"#
        );
        tx.submit_request(
            "ok",
            Priority::Normal,
            Request::new(
                Problem::Mis {
                    base_degree: Some(8),
                },
                generators::cycle(6).unwrap(),
            ),
        );
        tx.finish();
        assert!(rx.recv().unwrap().contains("\"type\":\"solution\""));
        server.shutdown();
    }

    #[test]
    fn expired_deadline_yields_typed_frame_and_the_worker_stays_usable() {
        let server = Server::start(quiet_config());
        let (mut tx, mut rx) = server.connect().split();
        let g = generators::cycle(8).unwrap();
        // a zero-millisecond budget is expired by the time any worker
        // picks the job up, so enforcement happens in-queue
        let doomed = Request::new(
            Problem::Mis {
                base_degree: Some(8),
            },
            g.clone(),
        )
        .deadline_ms(0);
        tx.submit_request("doomed", Priority::Normal, doomed);
        tx.submit_request(
            "alive",
            Priority::Normal,
            Request::new(
                Problem::Mis {
                    base_degree: Some(8),
                },
                g.clone(),
            ),
        );
        tx.finish();
        let first = rx.recv().unwrap();
        let reply = split_reply(&first).unwrap();
        assert_eq!(reply.id, "doomed");
        assert_eq!(reply.frame_type, "error");
        let payload = reply.payload.unwrap();
        assert!(
            payload.contains("\"kind\":\"deadline-exceeded\""),
            "{first}"
        );
        assert!(payload.contains("queued"), "expired in-queue: {first}");
        // the same (sole) worker then solves the next job normally
        let second = rx.recv().unwrap();
        let reply = split_reply(&second).unwrap();
        assert_eq!(reply.id, "alive");
        assert_eq!(reply.frame_type, "solution");
        assert!(rx.recv().is_none());
        server.shutdown();
    }

    #[test]
    fn deadline_on_the_wire_path_is_enforced_too() {
        let server = Server::start(quiet_config());
        let (mut tx, mut rx) = server.connect().split();
        let line = r#"{"v":1,"type":"request","id":"w","problem":{"name":"mis","base_degree":8},"deadline_ms":0,"instance":{"kind":"host","nodes":4,"edges":[[0,1],[1,2],[2,3],[3,0]]}}"#;
        assert_eq!(tx.submit_line(line), Submitted::Queued);
        tx.finish();
        let frame = rx.recv().unwrap();
        let reply = split_reply(&frame).unwrap();
        assert_eq!(reply.frame_type, "error");
        assert!(
            reply
                .payload
                .unwrap()
                .contains("\"kind\":\"deadline-exceeded\""),
            "{frame}"
        );
        server.shutdown();
    }

    #[test]
    fn overload_rejections_carry_a_retry_hint() {
        let server = Server::start(ServerConfig {
            workers: 1,
            queue_capacity: 1,
            record_timings: false,
            retry_after_ms: 40,
            ..ServerConfig::default()
        });
        let (mut tx, mut rx) = server.connect().split();
        let g = generators::cycle(4096).unwrap();
        for i in 0..32 {
            let req = Request::new(
                Problem::Mis {
                    base_degree: Some(8),
                },
                g.clone(),
            )
            .seed(i);
            tx.submit_request(&format!("r{i}"), Priority::Normal, req);
        }
        tx.finish();
        let mut saw_hint = false;
        while let Some(frame) = rx.recv() {
            let reply = split_reply(&frame).unwrap();
            if reply.frame_type == "error" {
                assert!(
                    reply.payload.unwrap().contains("\"retry_after_ms\":40"),
                    "{frame}"
                );
                saw_hint = true;
            }
        }
        assert!(saw_hint, "a 32-burst into a 1-slot queue must overflow");
        server.shutdown();
    }

    #[test]
    fn slow_reply_consumers_are_evicted_and_the_server_survives() {
        // reply buffer of 1 and a near-zero write timeout: the second
        // completed reply cannot be buffered, so the connection must be
        // evicted — and the server must keep serving fresh connections
        let server = Server::start(ServerConfig {
            workers: 1,
            record_timings: false,
            reply_buffer: 1,
            write_timeout: Duration::from_millis(50),
            ..ServerConfig::default()
        });
        let (mut tx, rx) = server.connect().split();
        let g = generators::cycle(8).unwrap();
        for i in 0..4 {
            let req = Request::new(
                Problem::Mis {
                    base_degree: Some(8),
                },
                g.clone(),
            )
            .seed(i);
            tx.submit_request(&format!("r{i}"), Priority::Normal, req);
        }
        // never read `rx` until the workers have long since moved on
        let deadline = Instant::now() + Duration::from_secs(10);
        while server.stats().evicted == 0 {
            assert!(Instant::now() < deadline, "eviction never happened");
            thread::sleep(Duration::from_millis(5));
        }
        tx.finish();
        // the evicted connection yields whatever was buffered before the
        // teardown, then terminates instead of hanging
        let leftovers: Vec<String> = rx.collect();
        assert!(leftovers.len() < 4, "eviction must drop some replies");
        // a fresh connection is fully served
        let (mut tx, mut rx) = server.connect().split();
        tx.submit_request(
            "fresh",
            Priority::Normal,
            Request::new(
                Problem::Mis {
                    base_degree: Some(8),
                },
                g.clone(),
            ),
        );
        tx.finish();
        let frame = rx.recv().unwrap();
        assert!(frame.contains("\"type\":\"solution\""), "{frame}");
        assert!(rx.recv().is_none());
        server.shutdown();
    }

    #[test]
    fn chaos_worker_panics_become_internal_panic_frames() {
        // every job panics: the pool must survive and answer each
        // admitted request with the reserved internal-panic payload
        let server = Server::start(ServerConfig {
            record_timings: false,
            chaos: Some(ChaosConfig {
                seed: 7,
                worker_panic: 1.0,
                ..ChaosConfig::default()
            }),
            ..ServerConfig::default()
        });
        let (mut tx, rx) = server.connect().split();
        let g = generators::cycle(8).unwrap();
        for i in 0..3 {
            let req = Request::new(
                Problem::Mis {
                    base_degree: Some(8),
                },
                g.clone(),
            )
            .seed(i);
            tx.submit_request(&format!("r{i}"), Priority::Normal, req);
        }
        tx.finish();
        let frames: Vec<String> = rx.collect();
        assert_eq!(frames.len(), 3, "one reply per admitted request");
        for frame in &frames {
            let reply = split_reply(frame).unwrap();
            assert_eq!(reply.frame_type, "error");
            assert!(
                reply
                    .payload
                    .unwrap()
                    .contains("\"kind\":\"internal-panic\""),
                "{frame}"
            );
        }
        server.shutdown();
    }

    #[test]
    fn drain_reports_quiescence_and_shutdown_is_bounded() {
        let server = Server::start(quiet_config());
        let (mut tx, mut rx) = server.connect().split();
        tx.submit_request(
            "only",
            Priority::Normal,
            Request::new(
                Problem::Mis {
                    base_degree: Some(8),
                },
                generators::cycle(8).unwrap(),
            ),
        );
        tx.finish();
        assert!(rx.recv().unwrap().contains("\"type\":\"solution\""));
        assert!(server.drain(), "an idle server drains immediately");
        server.shutdown();
    }

    fn temp_journal_path(tag: &str) -> std::path::PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "splitd-server-test-{}-{tag}-{}.journal",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn heartbeat_reports_journal_and_replay_counters() {
        use crate::journal::{FsyncPolicy, Journal};

        let path = temp_journal_path("heartbeat");
        let _ = std::fs::remove_file(&path);
        let journal = Arc::new(Journal::open(&path, FsyncPolicy::Never).unwrap());
        let server = Server::start(ServerConfig {
            journal: Some(Arc::clone(&journal)),
            ..quiet_config()
        });
        let (mut tx, mut rx) = server.connect().split();
        let line = wire::render_request_with_key(
            "h1",
            Priority::Normal,
            Some("hb-key"),
            &Request::new(
                Problem::Mis {
                    base_degree: Some(8),
                },
                generators::cycle(6).unwrap(),
            ),
        );
        assert_eq!(tx.submit_line(&line), Submitted::Queued);
        assert!(rx.recv().unwrap().contains("\"type\":\"solution\""));
        assert_eq!(tx.submit_line(&line), Submitted::Replied, "cache hit");
        assert!(rx.recv().unwrap().contains("\"replayed\":true"));

        // the heartbeat frame carries the durability counters verbatim
        assert_eq!(
            tx.submit_line(r#"{"v":1,"type":"ping","id":"hb"}"#),
            Submitted::Replied
        );
        let beat = rx.recv().unwrap();
        for needle in [
            "\"replayed\":1",
            "\"journal_appended\":1",
            "\"journal_recovered\":0",
        ] {
            assert!(beat.contains(needle), "heartbeat lacks {needle}: {beat}");
        }
        let bytes_field = format!("\"journal_bytes\":{}", journal.stats().bytes);
        assert!(
            journal.stats().bytes > 0,
            "a journaled request leaves bytes on disk"
        );
        assert!(
            beat.contains(&bytes_field),
            "heartbeat lacks {bytes_field}: {beat}"
        );

        let stats = server.stats();
        assert_eq!(
            (
                stats.replayed,
                stats.journal_appended,
                stats.journal_recovered,
                stats.journal_bytes
            ),
            (1, 1, 0, journal.stats().bytes),
            "StatsSnapshot matches the journal's own counters"
        );
        tx.finish();
        assert!(rx.recv().is_none());
        server.shutdown();
        drop(journal);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn process_kill_recovery_replays_admitted_work_byte_identically() {
        use crate::journal::{FsyncPolicy, Journal};

        let path = temp_journal_path("kill-recover");
        let _ = std::fs::remove_file(&path);
        let request = Request::new(
            Problem::Mis {
                base_degree: Some(8),
            },
            generators::cycle(8).unwrap(),
        )
        .seed(3);
        let line =
            wire::render_request_with_key("job-1", Priority::Normal, Some("retry-key"), &request);
        let direct = Session::with_threads(1)
            .solve(&request)
            .unwrap()
            .to_json_line();

        // pass 1: the kill site always fires, so the very first job is
        // admitted (journaled) and solved but never delivered or marked
        // complete — exactly a kill -9 between solve and reply
        let journal = Arc::new(Journal::open(&path, FsyncPolicy::Always).unwrap());
        let server = Server::start(ServerConfig {
            journal: Some(Arc::clone(&journal)),
            chaos: Some(ChaosConfig {
                seed: 1,
                process_kill: 1.0,
                ..ChaosConfig::default()
            }),
            ..quiet_config()
        });
        let (mut tx, mut rx) = server.connect().split();
        assert_eq!(tx.submit_line(&line), Submitted::Queued);
        tx.finish();
        assert!(
            rx.recv().is_none(),
            "the killed job's reply is never delivered"
        );
        assert!(server.killed(), "the kill site fired");
        server.halt();
        drop(journal);

        // pass 2: restart recovers the admitted job and re-solves it
        let journal = Arc::new(Journal::open(&path, FsyncPolicy::Always).unwrap());
        assert_eq!(journal.stats().recovered, 1, "the lost job is recovered");
        let server = Server::start(ServerConfig {
            journal: Some(Arc::clone(&journal)),
            ..quiet_config()
        });
        let deadline = Instant::now() + Duration::from_secs(60);
        while journal.stats().completed < 1 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(journal.stats().completed, 1, "the recovered job completes");
        let appended_before_retry = journal.stats().appended;

        // the reconnect retry answers from the idempotency cache: byte
        // payload identical to a clean run, flagged replayed, and no
        // fresh journal admission
        let (mut tx, mut rx) = server.connect().split();
        assert_eq!(tx.submit_line(&line), Submitted::Replied);
        let frame = rx.recv().unwrap();
        let reply = split_reply(&frame).expect(&frame);
        assert!(reply.replayed, "the retry is flagged as a replay");
        assert_eq!(reply.id, "job-1");
        assert_eq!(
            reply.payload,
            Some(direct.as_str()),
            "byte parity across the crash"
        );
        tx.finish();
        assert!(rx.recv().is_none());
        assert_eq!(
            journal.stats().appended,
            appended_before_retry,
            "a replayed retry is never re-journaled"
        );
        let stats = server.stats();
        assert_eq!((stats.replayed, stats.journal_recovered), (1, 1));
        server.shutdown();
        drop(journal);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn handle_lifecycle_upload_solve_release() {
        let server = Server::start(quiet_config());
        let (mut tx, mut rx) = server.connect().split();
        let g = generators::cycle(8).unwrap();
        let request = Request::new(
            Problem::Mis {
                base_degree: Some(8),
            },
            g.clone(),
        )
        .seed(5);
        let handle = wire::render_handle(wire::instance_fingerprint(request.instance()));
        let direct = Session::with_threads(1)
            .solve(&request)
            .unwrap()
            .to_json_line();

        // upload answers immediately with the content-derived handle
        let upload = wire::render_upload("u1", request.instance());
        assert_eq!(tx.submit_line(&upload), Submitted::Replied);
        let frame = rx.recv().unwrap();
        let reply = split_reply(&frame).expect(&frame);
        assert_eq!(reply.frame_type, "uploaded");
        assert_eq!(reply.id, "u1");
        assert!(
            reply.payload.unwrap().contains(&handle),
            "uploaded frame names the handle: {frame}"
        );
        assert!(frame.contains("\"held\":1"), "{frame}");

        // re-uploading the same content is idempotent: same handle, no
        // second table entry
        assert_eq!(tx.submit_line(&upload), Submitted::Replied);
        let again = rx.recv().unwrap();
        assert!(again.contains(&handle), "{again}");
        assert!(again.contains("\"held\":1"), "{again}");
        assert_eq!(server.stats().handles_held, 1);

        // a handle-form solve is byte-identical to the inline form
        let by_handle = wire::render_request_with_handle("h1", Priority::Normal, &handle, &request);
        assert_eq!(tx.submit_line(&by_handle), Submitted::Queued);
        let frame = rx.recv().unwrap();
        let reply = split_reply(&frame).expect(&frame);
        assert_eq!(reply.frame_type, "solution");
        assert_eq!(reply.payload, Some(direct.as_str()), "byte parity");

        // release frees the entry and reports the new count
        let release = wire::render_release("d1", &handle);
        assert_eq!(tx.submit_line(&release), Submitted::Replied);
        let frame = rx.recv().unwrap();
        let reply = split_reply(&frame).expect(&frame);
        assert_eq!(reply.frame_type, "released");
        assert!(frame.contains("\"held\":0"), "{frame}");
        assert_eq!(server.stats().handles_held, 0);

        // double release and post-release solves are typed errors
        assert_eq!(tx.submit_line(&release), Submitted::Replied);
        let frame = rx.recv().unwrap();
        assert!(frame.contains("unknown instance handle"), "{frame}");
        assert_eq!(tx.submit_line(&by_handle), Submitted::Replied);
        let frame = rx.recv().unwrap();
        assert!(frame.contains("upload it first"), "{frame}");

        // re-upload works and yields the same handle
        assert_eq!(tx.submit_line(&upload), Submitted::Replied);
        assert!(rx.recv().unwrap().contains(&handle));

        // the canonical renderings above never fall off the fast path,
        // and the heartbeat carries both new counters
        assert_eq!(
            tx.submit_line(r#"{"v":1,"type":"ping","id":"hb"}"#),
            Submitted::Replied
        );
        let beat = rx.recv().unwrap();
        for needle in ["\"parse_fallbacks\":0", "\"handles_held\":1"] {
            assert!(beat.contains(needle), "heartbeat lacks {needle}: {beat}");
        }
        assert_eq!(server.stats().parse_fallbacks, 0);
        tx.finish();
        assert!(rx.recv().is_none());
        server.shutdown();
    }

    #[test]
    fn mutate_repairs_held_solution_and_counts() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use splitgraph::delta::{random_delta, ChurnStyle};

        let server = Server::start(quiet_config());
        let (mut tx, mut rx) = server.connect().split();
        // δ = r = 32 over n = 4000: regime margin so deletes cannot exit
        // the dispatch, large enough that 8 rewires stay under the refix
        // threshold (same shape as the api hold tests)
        let mut rng = StdRng::seed_from_u64(41);
        let b = generators::random_biregular(2000, 2000, 32, &mut rng).unwrap();
        let request = Request::new(Problem::weak_splitting(), b.clone())
            .deterministic()
            .seed(7);
        let handle = wire::render_handle(wire::instance_fingerprint(request.instance()));

        // upload, then a first handle-form solve: the worker adopts the
        // solution into the held cache before its reply is delivered
        let upload = wire::render_upload("u1", request.instance());
        assert_eq!(tx.submit_line(&upload), Submitted::Replied);
        rx.recv().unwrap();
        let solve1 = wire::render_request_with_handle("s1", Priority::Normal, &handle, &request);
        assert_eq!(tx.submit_line(&solve1), Submitted::Queued);
        let frame = rx.recv().unwrap();
        assert!(frame.contains("\"type\":\"solution\""), "{frame}");

        // a small rewire through the wire protocol moves the handle
        let delta = random_delta(&b, ChurnStyle::Rewire, 8, &mut rng);
        let mutate = wire::render_mutate("m1", &handle, delta.inserts(), delta.deletes());
        assert_eq!(tx.submit_line(&mutate), Submitted::Replied);
        let frame = rx.recv().unwrap();
        let reply = split_reply(&frame).expect(&frame);
        assert_eq!(reply.frame_type, "mutated");
        assert_eq!(reply.id, "m1");
        let new_handle = reply
            .payload
            .unwrap()
            .split("\"new_handle\":\"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .expect("mutated payload names the new handle")
            .to_owned();
        assert_ne!(new_handle, handle, "content hash must move");
        assert_eq!(server.stats().handles_held, 1, "moved, not duplicated");

        // the pre-mutation handle is gone
        assert_eq!(tx.submit_line(&solve1), Submitted::Replied);
        assert!(rx.recv().unwrap().contains("upload it first"));

        // solving by the new handle repairs the held solution instead of
        // re-solving, byte-identical to the direct hold → apply path
        let solve2 =
            wire::render_request_with_handle("s2", Priority::Normal, &new_handle, &request);
        assert_eq!(tx.submit_line(&solve2), Submitted::Queued);
        let frame = rx.recv().unwrap();
        let reply = split_reply(&frame).expect(&frame);
        assert_eq!(reply.frame_type, "solution");
        let session = Session::with_threads(1);
        let mut direct = session.hold(&request).unwrap();
        let expect = direct.apply(&delta).unwrap().to_json_line();
        assert!(
            expect.contains("weak-splitting/repair"),
            "the direct path takes the repair route: {expect}"
        );
        assert_eq!(reply.payload, Some(expect.as_str()), "byte parity");

        // churn counters surface in the heartbeat and the snapshot
        assert_eq!(
            tx.submit_line(r#"{"v":1,"type":"ping","id":"hb"}"#),
            Submitted::Replied
        );
        let beat = rx.recv().unwrap();
        for needle in [
            "\"mutations_applied\":1",
            "\"repairs\":1",
            "\"full_resolves\":0",
        ] {
            assert!(beat.contains(needle), "heartbeat lacks {needle}: {beat}");
        }
        let stats = server.stats();
        assert_eq!(stats.mutations_applied, 1);
        assert_eq!(stats.repairs, 1);
        assert_eq!(stats.full_resolves, 0);
        assert!(
            stats.refix_mean_permille > 0,
            "a repair records its refix fraction"
        );
        tx.finish();
        assert!(rx.recv().is_none());
        server.shutdown();
    }

    #[test]
    fn mutate_error_paths_are_typed() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let server = Server::start(quiet_config());
        let (mut tx, mut rx) = server.connect().split();

        // unknown handle
        let bogus = "0123456789abcdef0123456789abcdef";
        let line = wire::render_mutate("m1", bogus, &[(0, 0)], &[]);
        assert_eq!(tx.submit_line(&line), Submitted::Replied);
        let frame = rx.recv().unwrap();
        assert!(
            frame.contains("\"type\":\"error\"") && frame.contains("unknown instance handle"),
            "{frame}"
        );

        // a mutate without any edit list never classifies
        let no_edits = format!(r#"{{"v":1,"type":"mutate","id":"m2","handle":"{bogus}"}}"#);
        assert_eq!(tx.submit_line(&no_edits), Submitted::Replied);
        let frame = rx.recv().unwrap();
        assert!(
            frame.contains("inserts and/or deletes"),
            "typed classify error: {frame}"
        );

        // mutating a non-bipartite instance is refused by kind
        let host = Request::new(
            Problem::Mis {
                base_degree: Some(8),
            },
            generators::cycle(6).unwrap(),
        );
        let host_handle = wire::render_handle(wire::instance_fingerprint(host.instance()));
        assert_eq!(
            tx.submit_line(&wire::render_upload("u1", host.instance())),
            Submitted::Replied
        );
        rx.recv().unwrap();
        let line = wire::render_mutate("m3", &host_handle, &[(0, 0)], &[]);
        assert_eq!(tx.submit_line(&line), Submitted::Replied);
        let frame = rx.recv().unwrap();
        assert!(
            frame.contains("mutate targets a bipartite instance"),
            "{frame}"
        );

        // a structurally invalid delta (deleting an absent edge) is a
        // typed error and leaves the handle untouched
        let mut rng = StdRng::seed_from_u64(51);
        let b = generators::random_biregular(8, 8, 3, &mut rng).unwrap();
        let absent = (0..8)
            .map(|v| (0, v))
            .find(|&(u, v)| !b.contains_edge(u, v))
            .expect("degree 3 of 8 leaves absent edges");
        let instance = Instance::Bipartite(b);
        let handle = wire::render_handle(wire::instance_fingerprint(&instance));
        assert_eq!(
            tx.submit_line(&wire::render_upload("u2", &instance)),
            Submitted::Replied
        );
        rx.recv().unwrap();
        let line = wire::render_mutate("m4", &handle, &[], &[absent]);
        assert_eq!(tx.submit_line(&line), Submitted::Replied);
        let frame = rx.recv().unwrap();
        assert!(
            frame.contains("\"kind\":\"invalid-request\"") && frame.contains("missing edge"),
            "{frame}"
        );
        assert_eq!(
            server.stats().mutations_applied,
            0,
            "failed mutations never count"
        );
        tx.finish();
        assert!(rx.recv().is_none());
        server.shutdown();
    }

    #[test]
    fn journal_replays_mutation_stream_across_restart() {
        use crate::journal::{FsyncPolicy, Journal};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use splitgraph::delta::{random_delta, ChurnStyle};

        let path = temp_journal_path("churn");
        let _ = std::fs::remove_file(&path);
        let mut rng = StdRng::seed_from_u64(71);
        let b = generators::random_biregular(64, 64, 6, &mut rng).unwrap();
        let delta = random_delta(&b, ChurnStyle::Rewire, 3, &mut rng);
        let mut patched = b.clone();
        delta.apply(&mut patched).unwrap();
        let instance = Instance::Bipartite(b);
        let handle = wire::render_handle(wire::instance_fingerprint(&instance));
        let expected =
            wire::render_handle(wire::instance_fingerprint(&Instance::Bipartite(patched)));

        {
            let journal = Arc::new(Journal::open(&path, FsyncPolicy::Never).unwrap());
            let server = Server::start(ServerConfig {
                journal: Some(journal),
                ..quiet_config()
            });
            let (mut tx, mut rx) = server.connect().split();
            assert_eq!(
                tx.submit_line(&wire::render_upload("u1", &instance)),
                Submitted::Replied
            );
            rx.recv().unwrap();
            let mutate = wire::render_mutate("m1", &handle, delta.inserts(), delta.deletes());
            assert_eq!(tx.submit_line(&mutate), Submitted::Replied);
            let frame = rx.recv().unwrap();
            assert!(
                frame.contains(&expected),
                "mutated frame names the patched content hash: {frame}"
            );
            tx.finish();
            assert!(rx.recv().is_none());
            server.shutdown();
        }

        // restart: upload and mutation replay from the journal in
        // admission order, rebuilding the table at the patched content
        {
            let journal = Arc::new(Journal::open(&path, FsyncPolicy::Never).unwrap());
            let server = Server::start(ServerConfig {
                journal: Some(journal),
                ..quiet_config()
            });
            let stats = server.stats();
            assert_eq!(stats.handles_held, 1, "one instance survives recovery");
            assert_eq!(stats.mutations_applied, 1, "the replayed mutation counts");
            let (mut tx, mut rx) = server.connect().split();
            // the pre-mutation handle did not survive; the patched one did
            let stale = wire::render_mutate("m2", &handle, delta.inserts(), delta.deletes());
            assert_eq!(tx.submit_line(&stale), Submitted::Replied);
            assert!(rx.recv().unwrap().contains("unknown instance handle"));
            assert_eq!(
                tx.submit_line(&wire::render_release("d1", &expected)),
                Submitted::Replied
            );
            assert!(rx.recv().unwrap().contains("\"held\":0"));
            tx.finish();
            assert!(rx.recv().is_none());
            server.shutdown();
        }

        // third start: the journaled release replays too
        {
            let journal = Arc::new(Journal::open(&path, FsyncPolicy::Never).unwrap());
            let server = Server::start(ServerConfig {
                journal: Some(journal),
                ..quiet_config()
            });
            assert_eq!(server.stats().handles_held, 0, "released stays released");
            server.shutdown();
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn failed_final_repair_drops_the_held_entry_instead_of_serving_stale() {
        // δ = 6, r = 1 → Theorem 2.7; deleting constraint 0's six edges
        // exits every regime, so the drained repair must decline — and a
        // from-scratch solve of the patched instance declines identically
        let mut edges = Vec::new();
        for u in 0..4usize {
            for j in 0..6usize {
                edges.push((u, 6 * u + j));
            }
        }
        let b = splitgraph::BipartiteGraph::from_edges(4, 24, &edges).unwrap();
        let request = Request::new(Problem::weak_splitting(), b)
            .deterministic()
            .seed(5);
        let handle = wire::render_handle(wire::instance_fingerprint(request.instance()));

        let server = Server::start(quiet_config());
        let (mut tx, mut rx) = server.connect().split();
        assert_eq!(
            tx.submit_line(&wire::render_upload("u1", request.instance())),
            Submitted::Replied
        );
        rx.recv().unwrap();
        let solve1 = wire::render_request_with_handle("s1", Priority::Normal, &handle, &request);
        assert_eq!(tx.submit_line(&solve1), Submitted::Queued);
        let frame = rx.recv().unwrap();
        assert!(frame.contains("\"type\":\"solution\""), "{frame}");
        assert_eq!(server.shared.held.lock().unwrap().len(), 1, "adopted");

        let deletes: Vec<(usize, usize)> = (0..6).map(|j| (0, j)).collect();
        let mutate = wire::render_mutate("m1", &handle, &[], &deletes);
        assert_eq!(tx.submit_line(&mutate), Submitted::Replied);
        let frame = rx.recv().unwrap();
        let new_handle = frame
            .split("\"new_handle\":\"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .expect("mutated payload names the new handle")
            .to_owned();

        // draining the pending delta exits the regime: a typed decline,
        // and the now-stale entry is dropped rather than reinserted
        let solve2 =
            wire::render_request_with_handle("s2", Priority::Normal, &new_handle, &request);
        assert_eq!(tx.submit_line(&solve2), Submitted::Queued);
        let frame = rx.recv().unwrap();
        assert!(frame.contains("unsupported-regime"), "{frame}");
        assert_eq!(
            server.shared.held.lock().unwrap().len(),
            0,
            "the stale entry must not survive a failed final repair"
        );

        // the retry must NOT flip error → stale accept: it re-solves the
        // patched instance from scratch and declines identically
        assert_eq!(tx.submit_line(&solve2), Submitted::Queued);
        let frame = rx.recv().unwrap();
        assert!(
            frame.contains("unsupported-regime"),
            "retry served a solution certified for the pre-mutation instance: {frame}"
        );
        tx.finish();
        assert!(rx.recv().is_none());
        server.shutdown();
    }

    #[test]
    fn held_cache_evicts_lru_and_purges_on_release() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let server = Server::start(ServerConfig {
            held_capacity: 1,
            ..quiet_config()
        });
        let (mut tx, mut rx) = server.connect().split();
        // δ = 16 ≥ 2·log₂(128): inside the Theorem 2.5 regime, so both
        // solves accept and adopt
        let mut rng = StdRng::seed_from_u64(61);
        let a = generators::random_biregular(64, 64, 16, &mut rng).unwrap();
        let b = generators::random_biregular(64, 64, 16, &mut rng).unwrap();
        let req_a = Request::new(Problem::weak_splitting(), a)
            .deterministic()
            .seed(1);
        let req_b = Request::new(Problem::weak_splitting(), b)
            .deterministic()
            .seed(2);
        let hash_a = wire::instance_fingerprint(req_a.instance());
        let hash_b = wire::instance_fingerprint(req_b.instance());
        for (req, id) in [(&req_a, "ua"), (&req_b, "ub")] {
            assert_eq!(
                tx.submit_line(&wire::render_upload(id, req.instance())),
                Submitted::Replied
            );
            rx.recv().unwrap();
        }
        let solve_a = wire::render_request_with_handle(
            "sa",
            Priority::Normal,
            &wire::render_handle(hash_a),
            &req_a,
        );
        assert_eq!(tx.submit_line(&solve_a), Submitted::Queued);
        assert!(rx.recv().unwrap().contains("\"type\":\"solution\""));
        {
            let held = server.shared.held.lock().unwrap();
            assert_eq!(held.len(), 1);
            assert!(held.keys().all(|(h, _)| *h == hash_a));
        }
        // at capacity, adopting B's solution evicts A (the LRU entry)
        // instead of refusing the adoption
        let solve_b = wire::render_request_with_handle(
            "sb",
            Priority::Normal,
            &wire::render_handle(hash_b),
            &req_b,
        );
        assert_eq!(tx.submit_line(&solve_b), Submitted::Queued);
        assert!(rx.recv().unwrap().contains("\"type\":\"solution\""));
        {
            let held = server.shared.held.lock().unwrap();
            assert_eq!(held.len(), 1, "eviction keeps the cache at capacity");
            assert!(
                held.keys().all(|(h, _)| *h == hash_b),
                "the LRU entry (A) was the victim"
            );
        }
        // release purges the held entry along with the handle
        assert_eq!(
            tx.submit_line(&wire::render_release("db", &wire::render_handle(hash_b))),
            Submitted::Replied
        );
        assert!(rx.recv().unwrap().contains("\"type\":\"released\""));
        assert_eq!(
            server.shared.held.lock().unwrap().len(),
            0,
            "released instances must not pin held-cache capacity"
        );
        // an entry whose instance hash no longer resolves is dropped on
        // reinsert (the mutate-during-checkout orphan), never stored
        let session = Session::with_threads(1);
        let orphan = session.hold(&req_b).unwrap();
        server.shared.store_held(
            (hash_b, wire::policy_fingerprint(&req_b)),
            HeldEntry {
                held: orphan,
                pending: Vec::new(),
                last_used: 0,
            },
        );
        assert_eq!(
            server.shared.held.lock().unwrap().len(),
            0,
            "dead-hash entries are dropped at reinsert"
        );
        tx.finish();
        assert!(rx.recv().is_none());
        server.shutdown();
    }

    #[test]
    fn keyed_mutate_replays_across_retry_and_restart() {
        use crate::journal::{FsyncPolicy, Journal};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use splitgraph::delta::{random_delta, ChurnStyle};

        let path = temp_journal_path("mutate-key");
        let _ = std::fs::remove_file(&path);
        let mut rng = StdRng::seed_from_u64(81);
        let b = generators::random_biregular(64, 64, 6, &mut rng).unwrap();
        let delta = random_delta(&b, ChurnStyle::Rewire, 3, &mut rng);
        let instance = Instance::Bipartite(b);
        let handle = wire::render_handle(wire::instance_fingerprint(&instance));
        let mutate = wire::render_mutate_with_key(
            "m1",
            &handle,
            Some("retry-m1"),
            delta.inserts(),
            delta.deletes(),
        );

        let first_payload;
        {
            let journal = Arc::new(Journal::open(&path, FsyncPolicy::Never).unwrap());
            let server = Server::start(ServerConfig {
                journal: Some(journal),
                ..quiet_config()
            });
            let (mut tx, mut rx) = server.connect().split();
            assert_eq!(
                tx.submit_line(&wire::render_upload("u1", &instance)),
                Submitted::Replied
            );
            rx.recv().unwrap();
            assert_eq!(tx.submit_line(&mutate), Submitted::Replied);
            let frame = rx.recv().unwrap();
            let reply = split_reply(&frame).expect(&frame);
            assert_eq!(reply.frame_type, "mutated");
            assert!(!reply.replayed);
            first_payload = reply.payload.unwrap().to_owned();
            // a verbatim retry replays the cached reply: the mutation is
            // NOT applied twice and the payload is byte-identical — this
            // is how a client recovers the moved handle after losing the
            // original reply
            assert_eq!(tx.submit_line(&mutate), Submitted::Replied);
            let frame = rx.recv().unwrap();
            let reply = split_reply(&frame).expect(&frame);
            assert_eq!(reply.frame_type, "mutated");
            assert!(reply.replayed, "{frame}");
            assert_eq!(reply.payload, Some(first_payload.as_str()), "byte parity");
            assert_eq!(server.stats().mutations_applied, 1, "applied exactly once");
            assert_eq!(server.stats().replayed, 1);
            tx.finish();
            assert!(rx.recv().is_none());
            server.shutdown();
        }

        // restart: the journaled keyed mutation replays into BOTH the
        // handle table and the idempotency cache, so a client that never
        // saw the reply still recovers the moved handle by retrying
        {
            let journal = Arc::new(Journal::open(&path, FsyncPolicy::Never).unwrap());
            let server = Server::start(ServerConfig {
                journal: Some(journal),
                ..quiet_config()
            });
            let (mut tx, mut rx) = server.connect().split();
            assert_eq!(tx.submit_line(&mutate), Submitted::Replied);
            let frame = rx.recv().unwrap();
            let reply = split_reply(&frame).expect(&frame);
            assert_eq!(reply.frame_type, "mutated");
            assert!(reply.replayed, "{frame}");
            assert_eq!(
                reply.payload,
                Some(first_payload.as_str()),
                "the recovered reply matches the original bytes"
            );
            assert_eq!(
                server.stats().mutations_applied,
                1,
                "only the recovery replay applied"
            );
            tx.finish();
            assert!(rx.recv().is_none());
            server.shutdown();
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn journal_compaction_bounds_recovery_replay() {
        use crate::journal::{FsyncPolicy, Journal};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use splitgraph::delta::{random_delta, ChurnStyle};

        let path = temp_journal_path("compact");
        let _ = std::fs::remove_file(&path);
        let mut rng = StdRng::seed_from_u64(91);
        let mut g = generators::random_biregular(64, 64, 6, &mut rng).unwrap();
        {
            let journal = Arc::new(Journal::open(&path, FsyncPolicy::Never).unwrap());
            let server = Server::start(ServerConfig {
                journal: Some(journal),
                journal_compact_threshold: 4,
                ..quiet_config()
            });
            let (mut tx, mut rx) = server.connect().split();
            assert_eq!(
                tx.submit_line(&wire::render_upload("u1", &Instance::Bipartite(g.clone()))),
                Submitted::Replied
            );
            rx.recv().unwrap();
            // a long churn stream: without compaction every one of these
            // state records would replay on restart
            for i in 0..12 {
                let handle = wire::render_handle(wire::instance_fingerprint(&Instance::Bipartite(
                    g.clone(),
                )));
                let delta = random_delta(&g, ChurnStyle::Rewire, 1, &mut rng);
                let line = wire::render_mutate(
                    &format!("m{i}"),
                    &handle,
                    delta.inserts(),
                    delta.deletes(),
                );
                assert_eq!(tx.submit_line(&line), Submitted::Replied);
                assert!(rx.recv().unwrap().contains("\"type\":\"mutated\""));
                delta.apply(&mut g).unwrap();
            }
            tx.finish();
            assert!(rx.recv().is_none());
            server.shutdown();
        }
        let live = wire::render_handle(wire::instance_fingerprint(&Instance::Bipartite(g.clone())));
        {
            let journal = Arc::new(Journal::open(&path, FsyncPolicy::Never).unwrap());
            let recovered = journal.stats().recovered;
            assert!(
                recovered <= 4,
                "the snapshot bounds the replay prefix; {recovered} records recovered"
            );
            let server = Server::start(ServerConfig {
                journal: Some(journal),
                journal_compact_threshold: 4,
                ..quiet_config()
            });
            assert_eq!(server.stats().handles_held, 1);
            let (mut tx, mut rx) = server.connect().split();
            // the snapshot captured the LIVE content: the post-churn
            // handle resolves after recovery
            assert_eq!(
                tx.submit_line(&wire::render_release("d1", &live)),
                Submitted::Replied
            );
            assert!(
                rx.recv().unwrap().contains("\"held\":0"),
                "the live handle survived compaction"
            );
            tx.finish();
            assert!(rx.recv().is_none());
            server.shutdown();
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn exotic_encodings_fall_back_and_are_counted() {
        let server = Server::start(quiet_config());
        let (mut tx, mut rx) = server.connect().split();
        // float-typed integral endpoints are valid under the strict
        // grammar but off the fast scanner's canonical subset
        let line = r#"{"v":1,"type":"request","id":"x1","problem":{"name":"mis","base_degree":8},"instance":{"kind":"host","nodes":4,"edges":[[0,1],[1,2],[2,3],[3,0.0]]}}"#;
        assert_eq!(tx.submit_line(line), Submitted::Queued);
        let frame = rx.recv().unwrap();
        assert!(frame.contains("\"type\":\"solution\""), "{frame}");
        assert_eq!(server.stats().parse_fallbacks, 1);
        tx.finish();
        assert!(rx.recv().is_none());
        server.shutdown();
    }
}
