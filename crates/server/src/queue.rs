//! The bounded, priority-laned job queue at the heart of `splitd`.
//!
//! One global queue feeds a fixed pool of persistent workers — there is
//! never a thread per request. The queue is bounded: admission control
//! either refuses a job at capacity ([`JobQueue::try_push`], surfaced to
//! clients as a typed `overloaded` error) or blocks the ingest thread
//! ([`JobQueue::push_blocking`]), which propagates backpressure down the
//! client's pipe or socket.
//!
//! Three lanes implement request priorities: workers always drain lane 0
//! (`high`) before lane 1 (`normal`) before lane 2 (`low`); within one
//! lane jobs leave in arrival order. The depth bound covers all lanes
//! together, so a flood of low-priority work still saturates admission.

use crate::wire::Priority;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct Inner<T> {
    lanes: [VecDeque<T>; Priority::COUNT],
    len: usize,
    high_water: usize,
    closed: bool,
}

/// Why a non-blocking push was refused.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue was at capacity; the job is handed back so the caller
    /// can report a typed admission reject.
    Full {
        /// The refused job.
        job: T,
        /// Depth observed at admission time (== capacity).
        depth: usize,
    },
    /// The queue was closed for shutdown.
    Closed(
        /// The refused job.
        T,
    ),
}

/// A bounded multi-producer multi-consumer queue with three priority
/// lanes and blocking pop.
pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// Creates a queue admitting at most `capacity` queued jobs
    /// (minimum 1).
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            inner: Mutex::new(Inner {
                lanes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                len: 0,
                high_water: 0,
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured depth bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently waiting (all lanes).
    pub fn depth(&self) -> usize {
        self.inner.lock().unwrap().len
    }

    /// The deepest the queue has been since startup.
    pub fn high_water(&self) -> usize {
        self.inner.lock().unwrap().high_water
    }

    fn admit(inner: &mut Inner<T>, priority: Priority, job: T) {
        inner.lanes[priority.lane()].push_back(job);
        inner.len += 1;
        inner.high_water = inner.high_water.max(inner.len);
    }

    /// Admits a job unless the queue is full or closed — the
    /// admission-control path.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`JobQueue::close`]; both return the job.
    pub fn try_push(&self, priority: Priority, job: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(PushError::Closed(job));
        }
        if inner.len >= self.capacity {
            let depth = inner.len;
            return Err(PushError::Full { job, depth });
        }
        Self::admit(&mut inner, priority, job);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Admits a job, waiting for a free slot if the queue is full — the
    /// backpressure path (the caller, an ingest thread, simply stops
    /// consuming input while it waits here).
    ///
    /// # Errors
    ///
    /// Returns the job back if the queue closed while waiting.
    pub fn push_blocking(&self, priority: Priority, job: T) -> Result<(), T> {
        let mut inner = self.inner.lock().unwrap();
        while inner.len >= self.capacity && !inner.closed {
            inner = self.not_full.wait(inner).unwrap();
        }
        if inner.closed {
            return Err(job);
        }
        Self::admit(&mut inner, priority, job);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Takes the most urgent waiting job, blocking while the queue is
    /// empty. Returns `None` once the queue is closed **and** drained —
    /// the worker-loop exit condition.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if inner.len > 0 {
                let job = inner
                    .lanes
                    .iter_mut()
                    .find_map(VecDeque::pop_front)
                    .expect("len > 0");
                inner.len -= 1;
                drop(inner);
                self.not_full.notify_one();
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).unwrap();
        }
    }

    /// Closes the queue: no further admissions; waiting workers drain
    /// what is left and then observe `None`.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Closes the queue **and** removes every job still waiting,
    /// returning them in pop order (priority lanes, then arrival). The
    /// crash-simulation path: a "killed" server abandons its backlog in
    /// one step instead of letting workers drain it job by job; the
    /// caller decides what dying means for the drained jobs (for the
    /// journaled server: nothing — their admitted records stay
    /// incomplete and a restart re-runs them).
    pub fn close_and_drain(&self) -> Vec<T> {
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        let mut drained = Vec::with_capacity(inner.len);
        for lane in &mut inner.lanes {
            drained.extend(lane.drain(..));
        }
        inner.len = 0;
        drop(inner);
        self.not_empty.notify_all();
        self.not_full.notify_all();
        drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lanes_drain_in_priority_order() {
        let q = JobQueue::new(8);
        q.try_push(Priority::Low, "l1").unwrap();
        q.try_push(Priority::Normal, "n1").unwrap();
        q.try_push(Priority::High, "h1").unwrap();
        q.try_push(Priority::Normal, "n2").unwrap();
        q.close();
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, ["h1", "n1", "n2", "l1"]);
    }

    #[test]
    fn capacity_bounds_admission_across_all_lanes() {
        let q = JobQueue::new(2);
        q.try_push(Priority::Low, 0).unwrap();
        q.try_push(Priority::Low, 1).unwrap();
        match q.try_push(Priority::High, 2) {
            Err(PushError::Full { job: 2, depth: 2 }) => {}
            other => panic!("expected Full at depth 2, got {other:?}"),
        }
        assert_eq!(q.depth(), 2);
        assert_eq!(q.high_water(), 2);
    }

    #[test]
    fn push_blocking_waits_for_a_slot() {
        let q = Arc::new(JobQueue::new(1));
        q.try_push(Priority::Normal, 1).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.push_blocking(Priority::Normal, 2).unwrap())
        };
        // the producer is stuck until we pop
        thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.pop(), Some(1));
        producer.join().unwrap();
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn close_and_drain_empties_all_lanes_in_pop_order() {
        let q = JobQueue::new(8);
        q.try_push(Priority::Low, "l1").unwrap();
        q.try_push(Priority::High, "h1").unwrap();
        q.try_push(Priority::Normal, "n1").unwrap();
        assert_eq!(q.close_and_drain(), ["h1", "n1", "l1"]);
        assert_eq!(q.depth(), 0);
        assert_eq!(q.pop(), None, "closed and empty");
        assert!(matches!(
            q.try_push(Priority::Normal, "late"),
            Err(PushError::Closed("late"))
        ));
    }

    #[test]
    fn close_wakes_blocked_workers_and_producers() {
        let q = Arc::new(JobQueue::<u32>::new(1));
        let worker = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.pop())
        };
        q.try_push(Priority::Normal, 7).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.push_blocking(Priority::Normal, 8))
        };
        thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        // worker drains the remaining job (it may have taken 7 already,
        // freeing the slot for 8 before close landed)
        let seen = worker.join().unwrap();
        assert!(seen == Some(7) || seen == Some(8), "{seen:?}");
        let _ = producer.join().unwrap();
        assert!(matches!(
            q.try_push(Priority::Normal, 9),
            Err(PushError::Closed(9))
        ));
    }

    mod close_drain_race {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            // Whatever the interleaving of producers, workers, and a
            // concurrent `close()`, every job is accounted for exactly
            // once: it either drains through `pop` or bounces back to
            // its producer — never lost, never duplicated — and every
            // thread terminates.
            #[test]
            fn every_job_drains_or_bounces_exactly_once(
                ((capacity, producers, jobs_each),
                 (workers, close_after_micros, lane_seed)) in
                    ((1usize..5, 1usize..4, 1usize..8),
                     (1usize..4, 0u64..500, 0u64..1 << 32))
            ) {
                let q = Arc::new(JobQueue::new(capacity));
                let total = producers * jobs_each;
                let producer_handles: Vec<_> = (0..producers)
                    .map(|p| {
                        let q = Arc::clone(&q);
                        thread::spawn(move || {
                            let mut bounced = Vec::new();
                            for j in 0..jobs_each {
                                let id = (p * jobs_each + j) as u32;
                                let lane = match (u64::from(id)
                                    .wrapping_mul(2654435761)
                                    .wrapping_add(lane_seed))
                                    % 3
                                {
                                    0 => Priority::High,
                                    1 => Priority::Normal,
                                    _ => Priority::Low,
                                };
                                // exercise both admission paths
                                let outcome = if j % 2 == 0 {
                                    q.push_blocking(lane, id)
                                } else {
                                    match q.try_push(lane, id) {
                                        Ok(()) => Ok(()),
                                        Err(PushError::Full { job, .. })
                                        | Err(PushError::Closed(job)) => Err(job),
                                    }
                                };
                                if let Err(job) = outcome {
                                    bounced.push(job);
                                }
                            }
                            bounced
                        })
                    })
                    .collect();
                let worker_handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let q = Arc::clone(&q);
                        thread::spawn(move || {
                            let mut drained = Vec::new();
                            while let Some(job) = q.pop() {
                                drained.push(job);
                            }
                            drained
                        })
                    })
                    .collect();
                thread::sleep(std::time::Duration::from_micros(close_after_micros));
                q.close();
                let mut seen: Vec<u32> = Vec::new();
                for handle in producer_handles {
                    seen.extend(handle.join().unwrap());
                }
                for handle in worker_handles {
                    seen.extend(handle.join().unwrap());
                }
                seen.sort_unstable();
                let expected: Vec<u32> = (0..total as u32).collect();
                prop_assert_eq!(seen, expected, "each job exactly once");
                prop_assert_eq!(q.depth(), 0, "closed queue fully drained");
            }
        }
    }
}
