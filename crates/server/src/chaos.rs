//! Deterministic seeded fault injection for the service path.
//!
//! A [`ChaosConfig`] hung on [`ServerConfig::chaos`](crate::ServerConfig)
//! arms injection seams in the worker loop (`server.rs`) and the stream
//! writer (`transport.rs`). Every decision is a **stateless** draw keyed
//! by `(seed, site, coordinates)` through [`local_runtime::splitmix64`]
//! — never a shared RNG — so whether a given job panics or a given
//! frame is torn depends only on the seed and the job's identity, not
//! on thread interleaving. Replaying the same seed over the same
//! request stream reproduces the same fault schedule exactly, which is
//! what lets the conformance chaos group assert byte-parity on the
//! surviving replies.
//!
//! The hook is a test/bench-only affordance: the default configuration
//! (`chaos: None`) compiles the seams down to a branch on `None`, and
//! `splitd` never exposes a flag for it.

use local_runtime::splitmix64;

/// Injection site: the worker panics before touching the job.
pub(crate) const SITE_WORKER_PANIC: u64 = 1;
/// Injection site: the worker stalls before solving (queue pressure).
pub(crate) const SITE_WORKER_STALL: u64 = 2;
/// Injection site: the stream writer truncates a reply frame mid-write
/// and fails the connection.
pub(crate) const SITE_TORN_FRAME: u64 = 3;
/// Injection site: the stream writer drops the connection before a
/// reply frame.
pub(crate) const SITE_DROP_CONNECTION: u64 = 4;
/// Injection site: the whole process "dies" (`kill -9` simulation) —
/// the worker halts the server after solving a job but **before** its
/// reply is delivered or its journal completion is recorded, the exact
/// window the recovery machinery must cover.
pub(crate) const SITE_PROCESS_KILL: u64 = 5;

/// A seeded fault-injection schedule. All probabilities are per-event
/// (per job for the worker sites, per reply frame for the stream
/// sites) and default to 0 — an all-zero config injects nothing.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Master seed; every injection decision is a pure function of this
    /// seed and the event's coordinates.
    pub seed: u64,
    /// Probability that a worker panics instead of solving a job
    /// (caught and reported as an `internal-panic` error frame).
    pub worker_panic: f64,
    /// Probability that a worker stalls for [`stall_ms`](Self::stall_ms)
    /// before solving a job (builds queue pressure and latency).
    pub worker_stall: f64,
    /// Stall duration, milliseconds.
    pub stall_ms: u64,
    /// Probability that the stream writer tears a reply frame — writes
    /// a prefix of its bytes, then fails the connection.
    pub torn_frame: f64,
    /// Probability that the stream writer drops the connection cleanly
    /// before writing a reply frame.
    pub drop_connection: f64,
    /// Probability (per job) that the process is "killed" after the
    /// solve but before reply delivery and the journal completion mark
    /// — the server [halts](crate::Server::halt) abruptly, simulating
    /// `kill -9` at the worst possible instant. Used by the conformance
    /// `recovery` group together with a journal.
    pub process_kill: f64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            worker_panic: 0.0,
            worker_stall: 0.0,
            stall_ms: 2,
            torn_frame: 0.0,
            drop_connection: 0.0,
            process_kill: 0.0,
        }
    }
}

impl ChaosConfig {
    /// A uniform draw in `[0, 1)` keyed by `(seed, site, a, b)` —
    /// deterministic and interleaving-independent.
    pub fn roll(&self, site: u64, a: u64, b: u64) -> f64 {
        let mixed = splitmix64(self.seed ^ splitmix64(site ^ splitmix64(a ^ splitmix64(b))));
        // top 53 bits → an exactly-representable dyadic in [0, 1)
        (mixed >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Whether the fault with probability `p` fires at `(site, a, b)`.
    pub(crate) fn fires(&self, p: f64, site: u64, a: u64, b: u64) -> bool {
        p > 0.0 && self.roll(site, a, b) < p
    }

    /// The draw the `process_kill` site makes for job `(conn, seq)` —
    /// the fault fires iff this is `< process_kill`. Exposed so a
    /// harness can *choose* a probability that guarantees the kill
    /// lands exactly once, at a seed-dependent position in its request
    /// stream (the recovery conformance group does this).
    pub fn process_kill_roll(&self, conn: u64, seq: u64) -> f64 {
        self.roll(SITE_PROCESS_KILL, conn, seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolls_are_deterministic_and_site_separated() {
        let c = ChaosConfig {
            seed: 42,
            ..ChaosConfig::default()
        };
        let a = c.roll(SITE_WORKER_PANIC, 0, 7);
        assert_eq!(a, c.roll(SITE_WORKER_PANIC, 0, 7), "pure function");
        assert_ne!(
            a,
            c.roll(SITE_TORN_FRAME, 0, 7),
            "sites draw independent streams"
        );
        assert_ne!(
            a,
            ChaosConfig {
                seed: 43,
                ..ChaosConfig::default()
            }
            .roll(SITE_WORKER_PANIC, 0, 7),
            "seed changes the schedule"
        );
        for site in [SITE_WORKER_STALL, SITE_DROP_CONNECTION] {
            for b in 0..64 {
                let r = c.roll(site, 1, b);
                assert!((0.0..1.0).contains(&r));
            }
        }
    }

    #[test]
    fn probabilities_gate_the_fire_decision() {
        let c = ChaosConfig {
            seed: 9,
            worker_panic: 0.25,
            ..ChaosConfig::default()
        };
        assert!(!c.fires(0.0, SITE_WORKER_PANIC, 0, 0), "p = 0 never fires");
        assert!(c.fires(1.0, SITE_WORKER_PANIC, 0, 0), "p = 1 always fires");
        let hits = (0..1000)
            .filter(|&b| c.fires(c.worker_panic, SITE_WORKER_PANIC, 0, b))
            .count();
        assert!((150..350).contains(&hits), "~25% of 1000, got {hits}");
    }
}
