//! `splitd` — the splitting-as-a-service daemon.
//!
//! Speaks the newline-delimited JSON protocol of `docs/PROTOCOL.md`
//! over stdin/stdout (default), a Unix socket (`--socket`), or TCP
//! (`--tcp`). See `README.md` § Service for a quickstart.

use splitting_server::{transport, Admission, Server, ServerConfig};
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "\
splitd — splitting-as-a-service job-queue daemon

USAGE:
    splitd [OPTIONS]

TRANSPORT (default: serve stdin/stdout, exit at EOF or shutdown frame):
    --socket <PATH>        listen on a Unix-domain socket
    --tcp <ADDR>           listen on TCP, e.g. 127.0.0.1:7317

OPTIONS:
    --workers <N>          persistent worker threads [default: 1]
    --queue-capacity <N>   bound on queued jobs [default: 256]
    --admission <MODE>     full-queue policy: reject | block [default: reject]
    --no-timings           omit queued_ns/solve_ns from reply frames
                           (byte-reproducible reply streams)
    --help                 print this help

The wire protocol is specified in docs/PROTOCOL.md.";

struct Args {
    socket: Option<String>,
    tcp: Option<String>,
    config: ServerConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        socket: None,
        tcp: None,
        config: ServerConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--socket" => args.socket = Some(value("--socket")?),
            "--tcp" => args.tcp = Some(value("--tcp")?),
            "--workers" => {
                args.config.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--queue-capacity" => {
                args.config.queue_capacity = value("--queue-capacity")?
                    .parse()
                    .map_err(|e| format!("--queue-capacity: {e}"))?;
            }
            "--admission" => {
                args.config.admission = match value("--admission")?.as_str() {
                    "reject" => Admission::Reject,
                    "block" => Admission::Block,
                    other => return Err(format!("--admission: unknown mode {other:?}")),
                };
            }
            "--no-timings" => args.config.record_timings = false,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.socket.is_some() && args.tcp.is_some() {
        return Err("--socket and --tcp are mutually exclusive".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            if message.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("splitd: {message}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let server = Server::start(args.config);
    let outcome = if let Some(path) = args.socket {
        transport::serve_unix(Arc::new(server), path.as_ref()).map(|()| None)
    } else if let Some(addr) = args.tcp {
        transport::serve_tcp(Arc::new(server), &addr).map(|()| None)
    } else {
        transport::serve_stdio(&server).map(|summary| {
            server.shutdown();
            Some(summary)
        })
    };
    match outcome {
        Ok(Some(summary)) => {
            eprintln!(
                "splitd: served {} replies over {} input lines",
                summary.replies_out, summary.lines_in
            );
            ExitCode::SUCCESS
        }
        Ok(None) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("splitd: {e}");
            ExitCode::FAILURE
        }
    }
}
