//! `splitd` — the splitting-as-a-service daemon.
//!
//! Speaks the newline-delimited JSON protocol of `docs/PROTOCOL.md`
//! over stdin/stdout (default), a Unix socket (`--socket`), or TCP
//! (`--tcp`). See `README.md` § Service for a quickstart.
//!
//! On Unix, `SIGTERM`/`SIGINT` trigger a graceful drain: admission
//! closes, queued and in-flight jobs get the configured drain deadline
//! to finish (over-deadline solves are cancelled cooperatively), and
//! the process exits 0 — a supervisor's stop never loses admitted work
//! that fits the deadline, and never hangs on work that doesn't.

use splitting_server::{
    transport, Admission, FsyncPolicy, Journal, JournalError, Server, ServerConfig,
};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "\
splitd — splitting-as-a-service job-queue daemon

USAGE:
    splitd [OPTIONS]

TRANSPORT (default: serve stdin/stdout, exit at EOF or shutdown frame):
    --socket <PATH>        listen on a Unix-domain socket
    --tcp <ADDR>           listen on TCP, e.g. 127.0.0.1:7317

OPTIONS:
    --workers <N>          persistent worker threads [default: 1]
    --queue-capacity <N>   bound on queued jobs [default: 256]
    --admission <MODE>     full-queue policy: reject | block [default: reject]
    --no-timings           omit queued_ns/solve_ns from reply frames
                           (byte-reproducible reply streams)
    --reply-buffer <N>     buffered reply frames per connection [default: 1024]
    --write-timeout-ms <MS>
                           grace for a slow reply consumer before its
                           connection is evicted [default: 5000]
    --drain-deadline-ms <MS>
                           bound on graceful drain at shutdown/SIGTERM
                           [default: 10000]
    --retry-after-ms <MS>  backoff hint on overloaded rejections [default: 25]
    --help                 print this help

DURABILITY:
    --journal <PATH>       write-ahead journal: admitted requests are
                           recorded before they are queued and marked
                           complete when replied, so a crash or kill -9
                           loses no admitted work. On startup the
                           journal's incomplete tail is re-enqueued in
                           admission order (a torn final record is
                           truncated) before new requests are served.
    --fsync-policy <P>     when journal appends reach stable storage:
                           always | batch | never [default: batch]
                           (requires --journal)

EXIT CODES:
    0   clean exit (EOF, shutdown frame, or graceful signal drain)
    1   transport or I/O failure
    2   usage error
    3   journal corrupt or written by an incompatible format version —
        the file is left untouched; inspect or move it, never silently
        overwritten

SIGNALS (unix):
    SIGTERM, SIGINT        drain gracefully (bounded by the drain
                           deadline), then exit 0

The wire protocol is specified in docs/PROTOCOL.md
(durability and idempotency under § Durability and idempotency).";

/// Exit code for a journal `splitd` cannot read (bad magic or format
/// version) — distinct from generic I/O failure so supervisors can tell
/// "operator attention needed" from "retry".
const EXIT_JOURNAL_CORRUPT: u8 = 3;

struct Args {
    socket: Option<String>,
    tcp: Option<String>,
    journal: Option<String>,
    fsync_policy: Option<FsyncPolicy>,
    config: ServerConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        socket: None,
        tcp: None,
        journal: None,
        fsync_policy: None,
        config: ServerConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--socket" => args.socket = Some(value("--socket")?),
            "--tcp" => args.tcp = Some(value("--tcp")?),
            "--workers" => {
                args.config.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--queue-capacity" => {
                args.config.queue_capacity = value("--queue-capacity")?
                    .parse()
                    .map_err(|e| format!("--queue-capacity: {e}"))?;
            }
            "--admission" => {
                args.config.admission = match value("--admission")?.as_str() {
                    "reject" => Admission::Reject,
                    "block" => Admission::Block,
                    other => return Err(format!("--admission: unknown mode {other:?}")),
                };
            }
            "--no-timings" => args.config.record_timings = false,
            "--reply-buffer" => {
                args.config.reply_buffer = value("--reply-buffer")?
                    .parse()
                    .map_err(|e| format!("--reply-buffer: {e}"))?;
            }
            "--write-timeout-ms" => {
                let ms: u64 = value("--write-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--write-timeout-ms: {e}"))?;
                args.config.write_timeout = Duration::from_millis(ms);
            }
            "--drain-deadline-ms" => {
                let ms: u64 = value("--drain-deadline-ms")?
                    .parse()
                    .map_err(|e| format!("--drain-deadline-ms: {e}"))?;
                args.config.drain_deadline = Duration::from_millis(ms);
            }
            "--retry-after-ms" => {
                args.config.retry_after_ms = value("--retry-after-ms")?
                    .parse()
                    .map_err(|e| format!("--retry-after-ms: {e}"))?;
            }
            "--journal" => args.journal = Some(value("--journal")?),
            "--fsync-policy" => {
                let raw = value("--fsync-policy")?;
                args.fsync_policy = Some(FsyncPolicy::parse(&raw).ok_or_else(|| {
                    format!("--fsync-policy: unknown policy {raw:?} (always | batch | never)")
                })?);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.socket.is_some() && args.tcp.is_some() {
        return Err("--socket and --tcp are mutually exclusive".into());
    }
    if args.fsync_policy.is_some() && args.journal.is_none() {
        return Err("--fsync-policy requires --journal".into());
    }
    Ok(args)
}

/// Graceful-termination plumbing: registers `SIGTERM`/`SIGINT` handlers
/// that set a flag, and a watcher thread that observes the flag, drains
/// the server (bounded by its drain deadline), and exits 0.
///
/// Implemented against the raw libc `signal` entry point so the daemon
/// stays dependency-free; this is the only unsafe in the binary and it
/// reduces to installing a signal-safe flag write.
#[cfg(unix)]
mod signals {
    use splitting_server::Server;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    static SHUTDOWN: AtomicBool = AtomicBool::new(false);

    unsafe extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // async-signal-safe: a single atomic store
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    /// Installs the handlers and spawns the watcher thread.
    pub fn install(server: Arc<Server>) {
        let handler = on_signal as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
        std::thread::Builder::new()
            .name("splitd-signal-watcher".into())
            .spawn(move || {
                while !SHUTDOWN.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(100));
                }
                eprintln!("splitd: signal received, draining");
                let drained = server.drain();
                eprintln!(
                    "splitd: {}",
                    if drained {
                        "drained cleanly"
                    } else {
                        "drain deadline hit, abandoning in-flight work"
                    }
                );
                std::process::exit(0);
            })
            .expect("spawn signal watcher");
    }
}

fn main() -> ExitCode {
    let mut args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            if message.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("splitd: {message}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &args.journal {
        let policy = args.fsync_policy.unwrap_or(FsyncPolicy::Batch);
        match Journal::open(path.as_ref(), policy) {
            Ok(journal) => {
                let stats = journal.stats();
                if stats.recovered > 0 {
                    eprintln!(
                        "splitd: journal {path}: recovering {} incomplete job(s)",
                        stats.recovered
                    );
                }
                args.config.journal = Some(Arc::new(journal));
            }
            Err(e @ (JournalError::BadMagic(_) | JournalError::VersionMismatch { .. })) => {
                // the file is real data this build cannot read: refuse
                // loudly with the dedicated exit code, never overwrite
                eprintln!("splitd: {e}");
                return ExitCode::from(EXIT_JOURNAL_CORRUPT);
            }
            Err(JournalError::Io(e)) => {
                eprintln!("splitd: journal {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let server = Arc::new(Server::start(args.config));
    #[cfg(unix)]
    signals::install(Arc::clone(&server));
    let outcome = if let Some(path) = args.socket {
        transport::serve_unix(server, path.as_ref()).map(|()| None)
    } else if let Some(addr) = args.tcp {
        transport::serve_tcp(server, &addr).map(|()| None)
    } else {
        transport::serve_stdio(&server).map(|summary| {
            server.drain();
            Some(summary)
        })
    };
    match outcome {
        Ok(Some(summary)) => {
            eprintln!(
                "splitd: served {} replies over {} input lines",
                summary.replies_out, summary.lines_in
            );
            ExitCode::SUCCESS
        }
        Ok(None) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("splitd: {e}");
            ExitCode::FAILURE
        }
    }
}
