//! The JSON-line wire codec: frame schemas, the request parser, the
//! client-side request renderer, and the reply-frame assemblers.
//!
//! The protocol is specified in `docs/PROTOCOL.md`; a doc-sync test
//! (`tests/protocol_doc.rs`) pins every worked example there to the real
//! output of this module, so the spec cannot drift from the code.
//!
//! Wire failures are reported through the same closed
//! [`ApiError`] taxonomy the in-process boundary uses: malformed frames
//! map to `invalid-request`, admission refusals to `overloaded`. The
//! embedded solution payload of a reply frame is byte-for-byte
//! [`Solution::to_json_line`](splitting_api::Solution::to_json_line) —
//! the server adds an envelope, never re-renders.

use crate::json::{self, Json, Number};
use degree_split::Engine;
use splitgraph::{BipartiteGraph, Graph, MultiGraph};
use splitting_api::render::JsonObject;
use splitting_api::{ApiError, Instance, Pipeline, Problem, Request};
use splitting_reductions::EdgeSplitEngine;

/// The wire protocol version this build speaks. Every frame carries
/// `"v":1`; other versions are rejected with a typed error.
pub const PROTOCOL_VERSION: u64 = 1;

/// Hard cap on the `id` field, in bytes.
pub const MAX_ID_BYTES: usize = 128;

/// Scheduling priority of a request. Workers always drain `high` before
/// `normal` before `low`; within one lane, requests run in arrival order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Served before everything else.
    High,
    /// The default lane.
    #[default]
    Normal,
    /// Served only when the other lanes are empty.
    Low,
}

impl Priority {
    /// Number of priority lanes.
    pub const COUNT: usize = 3;

    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<Priority> {
        match s {
            "high" => Some(Priority::High),
            "normal" => Some(Priority::Normal),
            "low" => Some(Priority::Low),
            _ => None,
        }
    }

    /// The queue lane index (0 = most urgent).
    pub fn lane(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

/// The envelope of a request frame: everything admission control needs,
/// extracted without parsing the (potentially large) problem/instance
/// payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Client-chosen request id, echoed on the reply frame.
    pub id: String,
    /// Scheduling priority.
    pub priority: Priority,
    /// Optional wall-clock budget (ms, counted from admission). The
    /// envelope scan surfaces it so the queue can expire jobs without
    /// parsing their payloads.
    pub deadline_ms: Option<u64>,
    /// Optional client-supplied idempotency key. A request whose key
    /// matches an already-completed one is answered from the reply
    /// cache, flagged `"replayed":true`, instead of being solved twice
    /// — the retry-after-reconnect contract (see `docs/PROTOCOL.md`
    /// § Durability and idempotency). Absent key = no caching.
    pub idempotency_key: Option<String>,
}

/// One scanned client frame, classified by `type`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientFrame {
    /// A `request` frame (body not yet parsed — workers do that).
    Request(Envelope),
    /// A `ping` frame; the server replies with a heartbeat.
    Ping {
        /// Echoed id ("" when the ping carried none).
        id: String,
    },
    /// A `shutdown` frame; the server drains and closes the stream.
    Shutdown,
}

fn invalid(field: &'static str, reason: impl Into<String>) -> ApiError {
    ApiError::InvalidRequest {
        field,
        reason: reason.into(),
    }
}

const REQUEST_KEYS: &[&str] = &[
    "v",
    "type",
    "id",
    "priority",
    "problem",
    "instance",
    "determinism",
    "seed",
    "force_pipeline",
    "max_rounds",
    "attempts",
    "deadline_ms",
    "idempotency_key",
];
const PING_KEYS: &[&str] = &["v", "type", "id"];
const SHUTDOWN_KEYS: &[&str] = &["v", "type"];

fn check_version(raw: Option<&&str>) -> Result<(), ApiError> {
    match raw {
        Some(raw) => {
            let v = json::parse(raw)
                .ok()
                .and_then(|j| j.as_number())
                .and_then(Number::as_u64);
            if v == Some(PROTOCOL_VERSION) {
                Ok(())
            } else {
                Err(invalid(
                    "v",
                    format!("unsupported protocol version {raw}; this server speaks v{PROTOCOL_VERSION}"),
                ))
            }
        }
        None => Err(invalid(
            "v",
            format!("missing protocol version; send \"v\":{PROTOCOL_VERSION}"),
        )),
    }
}

fn parse_id(raw: Option<&&str>) -> Result<String, ApiError> {
    let Some(raw) = raw else {
        return Err(invalid(
            "id",
            "request frames must carry a client-chosen id",
        ));
    };
    let id = json::parse(raw)
        .ok()
        .and_then(|j| j.as_str().map(str::to_owned))
        .ok_or_else(|| invalid("id", "id must be a JSON string"))?;
    if id.is_empty() {
        return Err(invalid("id", "id must be non-empty"));
    }
    if id.len() > MAX_ID_BYTES {
        return Err(invalid(
            "id",
            format!("id exceeds {MAX_ID_BYTES} bytes ({} given)", id.len()),
        ));
    }
    Ok(id)
}

fn parse_priority(raw: Option<&&str>) -> Result<Priority, ApiError> {
    match raw {
        None => Ok(Priority::Normal),
        Some(raw) => {
            let s = json::parse(raw)
                .ok()
                .and_then(|j| j.as_str().map(str::to_owned))
                .ok_or_else(|| invalid("priority", "priority must be a JSON string"))?;
            Priority::parse(&s).ok_or_else(|| {
                invalid(
                    "priority",
                    format!("unknown priority \"{s}\"; use high, normal, or low"),
                )
            })
        }
    }
}

/// Classifies one line and validates its envelope (`v`, `type`, `id`,
/// `priority`, and key-set strictness) **without** parsing the problem or
/// instance payloads — those are brace-skipped, so admission control on
/// a megabyte-scale frame costs a single scan. The deferred payload is
/// parsed strictly by the worker ([`parse_request`]); a body error then
/// comes back as a typed error frame under this envelope's id.
///
/// # Errors
///
/// [`ApiError::InvalidRequest`] for anything that is not a structurally
/// valid v1 client frame.
pub fn scan_envelope(line: &str) -> Result<ClientFrame, ApiError> {
    let fields = json::scan_top_level(line)
        .map_err(|e| invalid("frame", format!("not a JSON object: {e}")))?;
    let get = |key: &str| fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v);
    check_version(get("v"))?;
    let ty = match get("type") {
        Some(raw) => json::parse(raw)
            .ok()
            .and_then(|j| j.as_str().map(str::to_owned))
            .ok_or_else(|| invalid("type", "type must be a JSON string"))?,
        None => return Err(invalid("type", "missing frame type")),
    };
    let allowed: &[&str] = match ty.as_str() {
        "request" => REQUEST_KEYS,
        "ping" => PING_KEYS,
        "shutdown" => SHUTDOWN_KEYS,
        other => {
            return Err(invalid(
                "type",
                format!("unknown frame type \"{other}\"; use request, ping, or shutdown"),
            ))
        }
    };
    for (key, _) in &fields {
        if !allowed.contains(key) {
            return Err(invalid(
                "frame",
                format!("unknown field \"{key}\" on a {ty} frame"),
            ));
        }
    }
    match ty.as_str() {
        "request" => {
            let id = parse_id(get("id"))?;
            let priority = parse_priority(get("priority"))?;
            let deadline_ms = match get("deadline_ms") {
                None => None,
                Some(raw) => Some(
                    json::parse(raw)
                        .ok()
                        .and_then(|j| j.as_number())
                        .and_then(Number::as_u64)
                        .ok_or_else(|| {
                            invalid("deadline_ms", "must be an unsigned integer (milliseconds)")
                        })?,
                ),
            };
            let idempotency_key = match get("idempotency_key") {
                None => None,
                Some(raw) => {
                    let key = json::parse(raw)
                        .ok()
                        .and_then(|j| j.as_str().map(str::to_owned))
                        .ok_or_else(|| invalid("idempotency_key", "must be a JSON string"))?;
                    if key.is_empty() {
                        return Err(invalid(
                            "idempotency_key",
                            "must be non-empty (omit the field for no idempotency)",
                        ));
                    }
                    if key.len() > MAX_ID_BYTES {
                        return Err(invalid(
                            "idempotency_key",
                            format!("exceeds {MAX_ID_BYTES} bytes ({} given)", key.len()),
                        ));
                    }
                    Some(key)
                }
            };
            if get("problem").is_none() {
                return Err(invalid("problem", "request frames must carry a problem"));
            }
            if get("instance").is_none() {
                return Err(invalid("instance", "request frames must carry an instance"));
            }
            Ok(ClientFrame::Request(Envelope {
                id,
                priority,
                deadline_ms,
                idempotency_key,
            }))
        }
        "ping" => {
            let id = match get("id") {
                Some(_) => parse_id(get("id"))?,
                None => String::new(),
            };
            Ok(ClientFrame::Ping { id })
        }
        _ => Ok(ClientFrame::Shutdown),
    }
}

// ------------------------------------------------------- request parsing

fn field_str(fields: &[(&str, &str)], key: &'static str) -> Result<Option<String>, ApiError> {
    match fields.iter().find(|(k, _)| *k == key) {
        None => Ok(None),
        Some((_, raw)) => json::parse(raw)
            .ok()
            .and_then(|j| j.as_str().map(str::to_owned))
            .map(Some)
            .ok_or_else(|| invalid(key, "must be a JSON string")),
    }
}

fn field_number(fields: &[(&str, &str)], key: &'static str) -> Result<Option<Number>, ApiError> {
    match fields.iter().find(|(k, _)| *k == key) {
        None => Ok(None),
        Some((_, raw)) => json::parse(raw)
            .ok()
            .and_then(|j| j.as_number())
            .map(Some)
            .ok_or_else(|| invalid(key, "must be a JSON number")),
    }
}

fn obj_str(obj: &Json, key: &'static str, ctx: &'static str) -> Result<Option<String>, ApiError> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => v.as_str().map(|s| Some(s.to_owned())).ok_or_else(|| {
            invalid(
                ctx,
                format!("{key} must be a string, got {}", v.type_name()),
            )
        }),
    }
}

fn obj_number(
    obj: &Json,
    key: &'static str,
    ctx: &'static str,
) -> Result<Option<Number>, ApiError> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => v.as_number().map(Some).ok_or_else(|| {
            invalid(
                ctx,
                format!("{key} must be a number, got {}", v.type_name()),
            )
        }),
    }
}

fn obj_usize(obj: &Json, key: &'static str, ctx: &'static str) -> Result<Option<usize>, ApiError> {
    match obj_number(obj, key, ctx)? {
        None => Ok(None),
        Some(n) => n
            .as_usize()
            .map(Some)
            .ok_or_else(|| invalid(ctx, format!("{key} must be a non-negative integer"))),
    }
}

fn check_keys(obj: &Json, allowed: &[&str], ctx: &'static str) -> Result<(), ApiError> {
    for (key, _) in obj.as_object().expect("checked object") {
        if !allowed.iter().any(|a| a == key) {
            return Err(invalid(ctx, format!("unknown field \"{key}\"")));
        }
    }
    Ok(())
}

fn parse_problem(raw: &str) -> Result<Problem, ApiError> {
    let obj = json::parse(raw).map_err(|e| invalid("problem", e.to_string()))?;
    if obj.as_object().is_none() {
        return Err(invalid("problem", "must be a JSON object"));
    }
    let name = obj_str(&obj, "name", "problem")?
        .ok_or_else(|| invalid("problem", "missing problem name"))?;
    match name.as_str() {
        "weak-splitting" => {
            check_keys(&obj, &["name", "thm12_constant"], "problem")?;
            let c = obj_number(&obj, "thm12_constant", "problem")?.map_or(3.0, Number::as_f64);
            Ok(Problem::WeakSplitting { thm12_constant: c })
        }
        "weak-multicolor" => {
            check_keys(&obj, &["name"], "problem")?;
            Ok(Problem::WeakMulticolor)
        }
        "multicolor-splitting" => {
            check_keys(&obj, &["name", "colors", "lambda"], "problem")?;
            let colors = obj_number(&obj, "colors", "problem")?
                .and_then(Number::as_u32)
                .ok_or_else(|| invalid("problem", "colors must be an integer palette bound"))?;
            let lambda = obj_number(&obj, "lambda", "problem")?
                .ok_or_else(|| invalid("problem", "missing per-color load cap lambda"))?
                .as_f64();
            Ok(Problem::MulticolorSplitting { colors, lambda })
        }
        "uniform-splitting" => {
            check_keys(&obj, &["name", "eps", "min_degree"], "problem")?;
            Ok(Problem::UniformSplitting {
                eps: obj_number(&obj, "eps", "problem")?.map(Number::as_f64),
                min_degree: obj_usize(&obj, "min_degree", "problem")?,
            })
        }
        "degree-splitting" => {
            check_keys(&obj, &["name", "eps", "engine"], "problem")?;
            let eps = obj_number(&obj, "eps", "problem")?
                .ok_or_else(|| invalid("problem", "missing contract accuracy eps"))?
                .as_f64();
            let engine = match obj_str(&obj, "engine", "problem")?.as_deref() {
                None | Some("eulerian-oracle") => Engine::EulerianOracle,
                Some("walk") => Engine::Walk,
                Some(other) => {
                    return Err(invalid(
                        "problem",
                        format!("unknown engine \"{other}\"; use eulerian-oracle or walk"),
                    ))
                }
            };
            Ok(Problem::DegreeSplitting { eps, engine })
        }
        "sinkless-orientation" => {
            check_keys(&obj, &["name"], "problem")?;
            Ok(Problem::SinklessOrientation)
        }
        "delta-coloring" => {
            check_keys(&obj, &["name", "base_degree", "max_eps"], "problem")?;
            Ok(Problem::DeltaColoring {
                base_degree: obj_usize(&obj, "base_degree", "problem")?,
                max_eps: obj_number(&obj, "max_eps", "problem")?.map(Number::as_f64),
            })
        }
        "edge-coloring" => {
            check_keys(&obj, &["name", "base_degree", "engine"], "problem")?;
            let engine = match obj_str(&obj, "engine", "problem")?.as_deref() {
                None | Some("eulerian") => EdgeSplitEngine::Eulerian,
                Some("walk") => EdgeSplitEngine::Walk,
                Some(other) => {
                    return Err(invalid(
                        "problem",
                        format!("unknown engine \"{other}\"; use eulerian or walk"),
                    ))
                }
            };
            Ok(Problem::EdgeColoring {
                base_degree: obj_usize(&obj, "base_degree", "problem")?,
                engine,
            })
        }
        "mis" => {
            check_keys(&obj, &["name", "base_degree"], "problem")?;
            Ok(Problem::Mis {
                base_degree: obj_usize(&obj, "base_degree", "problem")?,
            })
        }
        other => Err(invalid("problem", format!("unknown problem \"{other}\""))),
    }
}

fn parse_instance(raw: &str) -> Result<Instance, ApiError> {
    let fields = json::scan_top_level(raw)
        .map_err(|e| invalid("instance", format!("not a JSON object: {e}")))?;
    let get = |key: &str| fields.iter().find(|(k, _)| *k == key).map(|(_, v)| *v);
    let kind = match get("kind") {
        Some(raw) => json::parse(raw)
            .ok()
            .and_then(|j| j.as_str().map(str::to_owned))
            .ok_or_else(|| invalid("instance", "kind must be a JSON string"))?,
        None => return Err(invalid("instance", "missing instance kind")),
    };
    let small_usize = |key: &'static str| -> Result<Option<usize>, ApiError> {
        match get(key) {
            None => Ok(None),
            Some(raw) => json::parse(raw)
                .ok()
                .and_then(|j| j.as_number())
                .and_then(Number::as_usize)
                .map(Some)
                .ok_or_else(|| {
                    invalid("instance", format!("{key} must be a non-negative integer"))
                }),
        }
    };
    let edges = || -> Result<Vec<(usize, usize)>, ApiError> {
        match get("edges") {
            Some(raw) => {
                json::parse_edge_pairs(raw).map_err(|e| invalid("instance", format!("edges: {e}")))
            }
            None => Err(invalid("instance", "missing edges array")),
        }
    };
    let check_keys = |allowed: &[&str]| -> Result<(), ApiError> {
        for (key, _) in &fields {
            if !allowed.contains(key) {
                return Err(invalid(
                    "instance",
                    format!("unknown field \"{key}\" on a {kind} instance"),
                ));
            }
        }
        Ok(())
    };
    match kind.as_str() {
        "bipartite" => {
            check_keys(&["kind", "left", "right", "edges"])?;
            let left = small_usize("left")?
                .ok_or_else(|| invalid("instance", "missing left (constraint count)"))?;
            let right = small_usize("right")?
                .ok_or_else(|| invalid("instance", "missing right (variable count)"))?;
            let b = BipartiteGraph::from_edges_bulk(left, right, &edges()?)
                .map_err(|e| invalid("instance", e.to_string()))?;
            Ok(Instance::Bipartite(b))
        }
        "host" => {
            check_keys(&["kind", "nodes", "edges"])?;
            let n =
                small_usize("nodes")?.ok_or_else(|| invalid("instance", "missing node count"))?;
            let g = Graph::from_edges_bulk(n, &edges()?)
                .map_err(|e| invalid("instance", e.to_string()))?;
            Ok(Instance::Host(g))
        }
        "multigraph" => {
            check_keys(&["kind", "nodes", "edges"])?;
            let n =
                small_usize("nodes")?.ok_or_else(|| invalid("instance", "missing node count"))?;
            let endpoints = edges()?;
            // from_endpoints panics on out-of-range ids; validate first so
            // malformed frames stay typed errors
            for &(a, b) in &endpoints {
                if a >= n || b >= n {
                    return Err(invalid(
                        "instance",
                        format!("edge endpoint ({a}, {b}) out of range for {n} nodes"),
                    ));
                }
            }
            Ok(Instance::Multi(MultiGraph::from_endpoints(n, endpoints)))
        }
        other => Err(invalid(
            "instance",
            format!("unknown instance kind \"{other}\"; use bipartite, host, or multigraph"),
        )),
    }
}

/// Fully parses a `request` frame into its envelope and the typed
/// [`Request`] the in-process API solves. Strict: unknown fields anywhere
/// in the frame, the problem object, or the instance object are typed
/// errors (typos must not silently become defaults).
///
/// # Errors
///
/// [`ApiError::InvalidRequest`] describing the first offending field.
pub fn parse_request(line: &str) -> Result<(Envelope, Request), ApiError> {
    let envelope = match scan_envelope(line)? {
        ClientFrame::Request(envelope) => envelope,
        other => {
            return Err(invalid(
                "type",
                format!("expected a request frame, got {other:?}"),
            ))
        }
    };
    let fields = json::scan_top_level(line).expect("validated by scan_envelope");
    let get = |key: &str| fields.iter().find(|(k, _)| *k == key).map(|(_, v)| *v);
    let problem = parse_problem(get("problem").expect("checked by scan_envelope"))?;
    let instance = parse_instance(get("instance").expect("checked by scan_envelope"))?;
    let mut request = Request::new(problem, instance);
    match field_str(&fields, "determinism")?.as_deref() {
        None => {}
        Some("deterministic") => request = request.deterministic(),
        Some("randomized") => request = request.randomized(),
        Some(other) => {
            return Err(invalid(
                "determinism",
                format!("unknown policy \"{other}\"; use deterministic or randomized"),
            ))
        }
    }
    if let Some(n) = field_number(&fields, "seed")? {
        let seed = n
            .as_u64()
            .ok_or_else(|| invalid("seed", "must be an unsigned 64-bit integer"))?;
        request = request.seed(seed);
    }
    if let Some(name) = field_str(&fields, "force_pipeline")? {
        let pipeline = [
            Pipeline::Theorem27,
            Pipeline::Theorem25,
            Pipeline::ZeroRound,
            Pipeline::Theorem12,
        ]
        .into_iter()
        .find(|p| p.name() == name)
        .ok_or_else(|| {
            invalid(
                "force_pipeline",
                format!(
                    "unknown pipeline \"{name}\"; use theorem27, theorem25, zero-round, or theorem12"
                ),
            )
        })?;
        request = request.force_pipeline(pipeline);
    }
    if let Some(n) = field_number(&fields, "max_rounds")? {
        request = request.max_rounds(n.as_f64());
    }
    if let Some(n) = field_number(&fields, "attempts")? {
        let attempts = n
            .as_usize()
            .ok_or_else(|| invalid("attempts", "must be a non-negative integer"))?;
        request = request.attempts(attempts);
    }
    if let Some(ms) = envelope.deadline_ms {
        request = request.deadline_ms(ms);
    }
    Ok((envelope, request))
}

// ------------------------------------------------------ request rendering

fn render_edges(out: &mut String, edges: impl Iterator<Item = (usize, usize)>) {
    out.push('[');
    let mut first = true;
    for (u, v) in edges {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('[');
        out.push_str(&u.to_string());
        out.push(',');
        out.push_str(&v.to_string());
        out.push(']');
    }
    out.push(']');
}

fn render_instance(instance: &Instance) -> String {
    let mut edges_buf = String::new();
    let mut obj = JsonObject::new();
    match instance {
        Instance::Bipartite(b) => {
            render_edges(&mut edges_buf, b.edges());
            obj.string("kind", "bipartite")
                .uint("left", b.left_count() as u64)
                .uint("right", b.right_count() as u64)
                .raw("edges", &edges_buf);
        }
        Instance::Host(g) => {
            render_edges(&mut edges_buf, g.edges());
            obj.string("kind", "host")
                .uint("nodes", g.node_count() as u64)
                .raw("edges", &edges_buf);
        }
        Instance::Multi(g) => {
            render_edges(&mut edges_buf, (0..g.edge_count()).map(|e| g.endpoints(e)));
            obj.string("kind", "multigraph")
                .uint("nodes", g.node_count() as u64)
                .raw("edges", &edges_buf);
        }
    }
    obj.finish()
}

fn render_problem(problem: &Problem) -> String {
    let mut obj = JsonObject::new();
    obj.string("name", problem.name());
    match *problem {
        Problem::WeakSplitting { thm12_constant } => {
            obj.float("thm12_constant", thm12_constant);
        }
        Problem::WeakMulticolor | Problem::SinklessOrientation => {}
        Problem::MulticolorSplitting { colors, lambda } => {
            obj.uint("colors", u64::from(colors))
                .float("lambda", lambda);
        }
        Problem::UniformSplitting { eps, min_degree } => {
            if let Some(eps) = eps {
                obj.float("eps", eps);
            }
            if let Some(d) = min_degree {
                obj.uint("min_degree", d as u64);
            }
        }
        Problem::DegreeSplitting { eps, engine } => {
            obj.float("eps", eps).string(
                "engine",
                match engine {
                    Engine::EulerianOracle => "eulerian-oracle",
                    Engine::Walk => "walk",
                },
            );
        }
        Problem::DeltaColoring {
            base_degree,
            max_eps,
        } => {
            if let Some(b) = base_degree {
                obj.uint("base_degree", b as u64);
            }
            if let Some(e) = max_eps {
                obj.float("max_eps", e);
            }
        }
        Problem::EdgeColoring {
            base_degree,
            engine,
        } => {
            if let Some(b) = base_degree {
                obj.uint("base_degree", b as u64);
            }
            obj.string(
                "engine",
                match engine {
                    EdgeSplitEngine::Eulerian => "eulerian",
                    EdgeSplitEngine::Walk => "walk",
                },
            );
        }
        Problem::Mis { base_degree } => {
            if let Some(b) = base_degree {
                obj.uint("base_degree", b as u64);
            }
        }
    }
    obj.finish()
}

/// Renders a [`Request`] as a canonical v1 `request` frame — the
/// client-side encoder. [`parse_request`] inverts it exactly
/// (round-trip-tested), so in-process callers can go over the wire
/// without hand-writing JSON.
pub fn render_request(id: &str, priority: Priority, request: &Request) -> String {
    render_request_with_key(id, priority, None, request)
}

/// [`render_request`] with an optional client-supplied idempotency key
/// (rendered right after `priority`; `None` renders the exact same
/// frame as the keyless variant).
pub fn render_request_with_key(
    id: &str,
    priority: Priority,
    idempotency_key: Option<&str>,
    request: &Request,
) -> String {
    let problem = render_problem(request.problem());
    let instance = render_instance(request.instance());
    let mut obj = JsonObject::new();
    obj.uint("v", PROTOCOL_VERSION)
        .string("type", "request")
        .string("id", id)
        .string("priority", priority.name());
    if let Some(key) = idempotency_key {
        obj.string("idempotency_key", key);
    }
    obj.raw("problem", &problem)
        .raw("instance", &instance)
        .string("determinism", request.determinism().name())
        .uint("seed", request.master_seed());
    if let Some(p) = request.pipeline_override() {
        obj.string("force_pipeline", p.name());
    }
    if let Some(r) = request.budget().max_rounds {
        obj.float("max_rounds", r);
    }
    if let Some(a) = request.budget().attempts {
        obj.uint("attempts", a as u64);
    }
    if let Some(ms) = request.budget().deadline_ms {
        obj.uint("deadline_ms", ms);
    }
    obj.finish()
}

/// 128-bit structural fingerprint of a request's *content* — exactly
/// the fields [`render_request`] serializes, minus the envelope (id,
/// priority, idempotency key). Two requests with equal fingerprints
/// render byte-identical canonical payloads, which is what lets the
/// write-ahead journal intern one payload blob for many admissions
/// without paying for a JSON rendering per admission (see
/// [`crate::journal`]).
///
/// The hash is a fast non-cryptographic content address in its own
/// domain ([`crate::journal::DOMAIN_REQUEST`]); the journal trusts its
/// in-process writers, so the bar is accidental collisions, not
/// adversarial ones.
pub fn request_fingerprint(request: &Request) -> crate::journal::PayloadHash {
    use crate::journal;
    let mut h = journal::PayloadHasher::new(journal::DOMAIN_REQUEST);
    // an edge fits one word in any graph that fits in memory; the
    // packing cannot alias across edges because positions line up
    let mut edge = |(u, v): (usize, usize)| {
        debug_assert!(u >> 32 == 0 && v >> 32 == 0, "node id exceeds 32 bits");
        h.word(((u as u64) << 32) | (v as u64 & 0xFFFF_FFFF));
    };
    match request.instance() {
        Instance::Bipartite(b) => {
            edge((b.left_count(), b.right_count()));
            b.edges().for_each(&mut edge);
        }
        Instance::Host(g) => {
            edge((1, g.node_count()));
            g.edges().for_each(&mut edge);
        }
        Instance::Multi(g) => {
            edge((2, g.node_count()));
            (0..g.edge_count())
                .map(|e| g.endpoints(e))
                .for_each(&mut edge);
        }
    }
    // every problem field the renderer serializes, with presence tags
    // for the optional ones; the variant name separates the variants
    let problem = request.problem();
    h.bytes(problem.name().as_bytes());
    let mut opt_word = |v: Option<u64>| match v {
        Some(v) => {
            h.word(1);
            h.word(v);
        }
        None => h.word(0),
    };
    match *problem {
        Problem::WeakSplitting { thm12_constant } => opt_word(Some(thm12_constant.to_bits())),
        Problem::WeakMulticolor | Problem::SinklessOrientation => {}
        Problem::MulticolorSplitting { colors, lambda } => {
            opt_word(Some(u64::from(colors)));
            opt_word(Some(lambda.to_bits()));
        }
        Problem::UniformSplitting { eps, min_degree } => {
            opt_word(eps.map(f64::to_bits));
            opt_word(min_degree.map(|d| d as u64));
        }
        Problem::DegreeSplitting { eps, engine } => {
            opt_word(Some(eps.to_bits()));
            opt_word(Some(engine as u64));
        }
        Problem::DeltaColoring {
            base_degree,
            max_eps,
        } => {
            opt_word(base_degree.map(|b| b as u64));
            opt_word(max_eps.map(f64::to_bits));
        }
        Problem::EdgeColoring {
            base_degree,
            engine,
        } => {
            opt_word(base_degree.map(|b| b as u64));
            opt_word(Some(engine as u64));
        }
        Problem::Mis { base_degree } => opt_word(base_degree.map(|b| b as u64)),
    }
    h.bytes(request.determinism().name().as_bytes());
    h.word(request.master_seed());
    match request.pipeline_override() {
        Some(p) => h.bytes(p.name().as_bytes()),
        None => h.word(0),
    }
    let budget = request.budget();
    let mut opt_word = |v: Option<u64>| match v {
        Some(v) => {
            h.word(1);
            h.word(v);
        }
        None => h.word(0),
    };
    opt_word(budget.max_rounds.map(f64::to_bits));
    opt_word(budget.attempts.map(|a| a as u64));
    opt_word(budget.deadline_ms);
    h.finish()
}

/// Renders a `ping` frame.
pub fn render_ping(id: &str) -> String {
    let mut obj = JsonObject::new();
    obj.uint("v", PROTOCOL_VERSION).string("type", "ping");
    if !id.is_empty() {
        obj.string("id", id);
    }
    obj.finish()
}

/// Renders a `shutdown` frame.
pub fn render_shutdown() -> String {
    let mut obj = JsonObject::new();
    obj.uint("v", PROTOCOL_VERSION).string("type", "shutdown");
    obj.finish()
}

// -------------------------------------------------------- reply assembly

/// Per-request service timings attached to reply frames (omitted when the
/// server runs with timings disabled, e.g. for byte-reproducible streams).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timing {
    /// Nanoseconds between admission and a worker picking the job up.
    pub queued_ns: u64,
    /// Nanoseconds the worker spent parsing + solving + rendering.
    pub solve_ns: u64,
}

fn reply_frame(
    frame_type: &str,
    id: &str,
    seq: u64,
    timing: Option<Timing>,
    replayed: bool,
    payload_key: &str,
    payload: &str,
) -> String {
    let mut obj = JsonObject::new();
    obj.uint("v", PROTOCOL_VERSION)
        .string("type", frame_type)
        .string("id", id)
        .uint("seq", seq);
    if let Some(t) = timing {
        obj.uint("queued_ns", t.queued_ns)
            .uint("solve_ns", t.solve_ns);
    }
    if replayed {
        obj.bool("replayed", true);
    }
    // the payload is always the LAST field so tests and clients can
    // extract it byte-exactly with `embedded_payload`
    obj.raw(payload_key, payload);
    obj.finish()
}

/// Assembles a `solution` reply frame around a rendered
/// [`Solution::to_json_line`](splitting_api::Solution::to_json_line)
/// payload (embedded verbatim).
pub fn solution_frame(id: &str, seq: u64, timing: Option<Timing>, payload: &str) -> String {
    reply_frame("solution", id, seq, timing, false, "solution", payload)
}

/// Assembles an `error` reply frame around a rendered
/// [`ApiError::to_json_line`] payload (embedded verbatim).
pub fn error_frame(id: &str, seq: u64, timing: Option<Timing>, payload: &str) -> String {
    reply_frame("error", id, seq, timing, false, "error", payload)
}

/// Assembles a reply frame served from the idempotency cache: same
/// shape as [`solution_frame`]/[`error_frame`] (the cached payload is
/// embedded byte-for-byte, still the last field) plus a
/// `"replayed":true` marker before the payload. Timings are omitted —
/// nothing was queued or solved.
pub fn replayed_frame(solution: bool, id: &str, seq: u64, payload: &str) -> String {
    let key = if solution { "solution" } else { "error" };
    reply_frame(key, id, seq, None, true, key, payload)
}

/// A point-in-time service snapshot, reported on heartbeat frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Requests solved (or typed-failed) and reported.
    pub served: u64,
    /// Requests refused admission.
    pub rejected: u64,
    /// Connections evicted for consuming replies too slowly.
    pub evicted: u64,
    /// Jobs waiting in the queue right now.
    pub queue_depth: usize,
    /// Deepest the queue has been since startup.
    pub queue_high_water: usize,
    /// Jobs being solved right now.
    pub inflight: usize,
    /// Persistent worker count.
    pub workers: usize,
    /// Configured queue capacity.
    pub queue_capacity: usize,
    /// Requests answered from the idempotency cache instead of solved.
    pub replayed: u64,
    /// Admissions appended to the journal since startup (0 when the
    /// server runs without `--journal`).
    pub journal_appended: u64,
    /// Current journal file size in bytes (0 without a journal).
    pub journal_bytes: u64,
    /// Incomplete jobs recovered from the journal at startup.
    pub journal_recovered: u64,
}

/// Assembles a `heartbeat` reply frame.
pub fn heartbeat_frame(id: &str, seq: u64, stats: StatsSnapshot) -> String {
    let mut obj = JsonObject::new();
    obj.uint("v", PROTOCOL_VERSION)
        .string("type", "heartbeat")
        .string("id", id)
        .uint("seq", seq)
        .uint("served", stats.served)
        .uint("rejected", stats.rejected)
        .uint("evicted", stats.evicted)
        .uint("queue_depth", stats.queue_depth as u64)
        .uint("queue_high_water", stats.queue_high_water as u64)
        .uint("inflight", stats.inflight as u64)
        .uint("workers", stats.workers as u64)
        .uint("queue_capacity", stats.queue_capacity as u64)
        .uint("replayed", stats.replayed)
        .uint("journal_appended", stats.journal_appended)
        .uint("journal_bytes", stats.journal_bytes)
        .uint("journal_recovered", stats.journal_recovered);
    obj.finish()
}

/// Renders the reserved wire-level panic report (see `docs/PROTOCOL.md`):
/// not part of the [`ApiError`] taxonomy because it certifies a server
/// bug, not a request failure.
pub fn internal_panic_payload(detail: &str) -> String {
    let mut obj = JsonObject::new();
    obj.string("event", "error")
        .string("kind", "internal-panic")
        .string("detail", detail);
    obj.finish()
}

/// A reply frame split back into its parts — the client-side decoder.
#[derive(Debug, Clone, PartialEq)]
pub struct Reply<'a> {
    /// `"solution"`, `"error"`, or `"heartbeat"`.
    pub frame_type: String,
    /// The echoed request id.
    pub id: String,
    /// Per-connection reporting sequence number.
    pub seq: u64,
    /// Optional service timings (absent when the server disables them).
    pub timing: Option<Timing>,
    /// `true` when the frame was served from the idempotency cache
    /// instead of a fresh solve.
    pub replayed: bool,
    /// The **byte-exact slice** of the embedded `solution`/`error`
    /// object; `None` for heartbeats. This is how the conformance
    /// harness asserts that server output equals direct `Session::solve`
    /// rendering byte for byte.
    pub payload: Option<&'a str>,
}

/// Splits a reply frame into its envelope and embedded payload slice.
/// Returns `None` when `frame` is not a well-formed v1 reply frame.
pub fn split_reply(frame: &str) -> Option<Reply<'_>> {
    let fields = json::scan_top_level(frame).ok()?;
    let get = |key: &str| fields.iter().find(|(k, _)| *k == key).map(|(_, v)| *v);
    let v = json::parse(get("v")?).ok()?.as_number()?.as_u64()?;
    if v != PROTOCOL_VERSION {
        return None;
    }
    let frame_type = json::parse(get("type")?).ok()?.as_str()?.to_owned();
    let id = json::parse(get("id")?).ok()?.as_str()?.to_owned();
    let seq = json::parse(get("seq")?).ok()?.as_number()?.as_u64()?;
    let field_u64 =
        |key: &str| -> Option<u64> { json::parse(get(key)?).ok()?.as_number()?.as_u64() };
    let timing = match (field_u64("queued_ns"), field_u64("solve_ns")) {
        (Some(queued_ns), Some(solve_ns)) => Some(Timing {
            queued_ns,
            solve_ns,
        }),
        _ => None,
    };
    // heartbeats reuse `replayed` as a counter (total cache hits served),
    // so the boolean reading applies only to solution/error frames
    let replayed = frame_type != "heartbeat"
        && match get("replayed") {
            None => false,
            Some(raw) => json::parse(raw).ok()?.as_bool()?,
        };
    let payload = match frame_type.as_str() {
        "solution" => Some(get("solution")?),
        "error" => Some(get("error")?),
        "heartbeat" => None,
        _ => return None,
    };
    Some(Reply {
        frame_type,
        id,
        seq,
        timing,
        replayed,
        payload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use splitgraph::generators;

    #[test]
    fn envelope_scan_classifies_frames() {
        let line = r#"{"v":1,"type":"request","id":"r1","priority":"high","problem":{"name":"mis"},"instance":{"kind":"host","nodes":1,"edges":[]}}"#;
        assert_eq!(
            scan_envelope(line).unwrap(),
            ClientFrame::Request(Envelope {
                id: "r1".into(),
                priority: Priority::High,
                deadline_ms: None,
                idempotency_key: None,
            })
        );
        assert_eq!(
            scan_envelope(r#"{"v":1,"type":"ping"}"#).unwrap(),
            ClientFrame::Ping { id: String::new() }
        );
        assert_eq!(
            scan_envelope(r#"{"v":1,"type":"shutdown"}"#).unwrap(),
            ClientFrame::Shutdown
        );
    }

    #[test]
    fn envelope_scan_rejects_bad_frames() {
        for (line, field) in [
            ("not json", "frame"),
            ("[1,2]", "frame"),
            (r#"{"type":"request"}"#, "v"),
            (r#"{"v":2,"type":"request"}"#, "v"),
            (r#"{"v":1}"#, "type"),
            (r#"{"v":1,"type":"nope"}"#, "type"),
            (r#"{"v":1,"type":"request"}"#, "id"),
            (r#"{"v":1,"type":"request","id":""}"#, "id"),
            (r#"{"v":1,"type":"request","id":"x","bogus":1}"#, "frame"),
            (
                r#"{"v":1,"type":"request","id":"x","priority":"urgent"}"#,
                "priority",
            ),
            (r#"{"v":1,"type":"request","id":"x"}"#, "problem"),
            (
                r#"{"v":1,"type":"request","id":"x","deadline_ms":"soon"}"#,
                "deadline_ms",
            ),
            (
                r#"{"v":1,"type":"request","id":"x","deadline_ms":-5}"#,
                "deadline_ms",
            ),
            (
                r#"{"v":1,"type":"request","id":"x","idempotency_key":7}"#,
                "idempotency_key",
            ),
            (
                r#"{"v":1,"type":"request","id":"x","idempotency_key":""}"#,
                "idempotency_key",
            ),
            (r#"{"v":1,"type":"shutdown","id":"x"}"#, "frame"),
        ] {
            match scan_envelope(line) {
                Err(ApiError::InvalidRequest { field: f, .. }) => {
                    assert_eq!(f, field, "line {line}")
                }
                other => panic!("{line}: expected invalid-request on {field}, got {other:?}"),
            }
        }
    }

    fn roundtrip(request: Request) {
        let line = render_request("rt", Priority::Low, &request);
        let (envelope, parsed) = parse_request(&line).expect(&line);
        assert_eq!(envelope.id, "rt");
        assert_eq!(envelope.priority, Priority::Low);
        assert_eq!(&parsed, &request, "wire round-trip changed the request");
    }

    #[test]
    fn every_problem_variant_roundtrips() {
        let mut rng = StdRng::seed_from_u64(9);
        let b = generators::random_biregular(8, 8, 4, &mut rng).unwrap();
        let g = generators::cycle(6).unwrap();
        let m = MultiGraph::from_endpoints(3, vec![(0, 1), (0, 1), (1, 2)]);
        roundtrip(Request::new(Problem::weak_splitting(), b.clone()).seed(7));
        roundtrip(
            Request::new(
                Problem::WeakSplitting {
                    thm12_constant: 1.5,
                },
                b.clone(),
            )
            .deterministic()
            .force_pipeline(Pipeline::Theorem25)
            .max_rounds(1e6)
            .attempts(3)
            .deadline_ms(30_000),
        );
        roundtrip(Request::new(Problem::WeakMulticolor, b.clone()));
        roundtrip(Request::new(
            Problem::MulticolorSplitting {
                colors: 6,
                lambda: 0.6,
            },
            b.clone(),
        ));
        roundtrip(Request::new(
            Problem::UniformSplitting {
                eps: Some(0.25),
                min_degree: Some(4),
            },
            g.clone(),
        ));
        roundtrip(Request::new(
            Problem::UniformSplitting {
                eps: None,
                min_degree: None,
            },
            g.clone(),
        ));
        roundtrip(Request::new(
            Problem::DegreeSplitting {
                eps: 0.25,
                engine: Engine::Walk,
            },
            m.clone(),
        ));
        roundtrip(Request::new(Problem::SinklessOrientation, g.clone()));
        roundtrip(Request::new(
            Problem::DeltaColoring {
                base_degree: Some(8),
                max_eps: Some(0.2),
            },
            g.clone(),
        ));
        roundtrip(Request::new(
            Problem::EdgeColoring {
                base_degree: None,
                engine: EdgeSplitEngine::Walk,
            },
            g.clone(),
        ));
        roundtrip(Request::new(Problem::Mis { base_degree: None }, g).seed(u64::MAX));
    }

    // The contract `request_fingerprint` must keep for journal payload
    // interning: fingerprints agree exactly when the canonical
    // renderings agree. Every variant pair here differs in one field
    // the renderer serializes, so a fingerprint that skipped any field
    // would collide two distinct payloads and fail this test.
    #[test]
    fn fingerprint_equality_tracks_canonical_rendering() {
        let mut rng = StdRng::seed_from_u64(11);
        let b = generators::random_biregular(8, 8, 4, &mut rng).unwrap();
        let b2 = generators::random_biregular(8, 8, 4, &mut rng).unwrap();
        let g = generators::cycle(6).unwrap();
        let m = MultiGraph::from_endpoints(3, vec![(0, 1), (0, 1), (1, 2)]);
        let mis = |instance: Instance| Request::new(Problem::Mis { base_degree: None }, instance);
        let variants: Vec<Request> = vec![
            Request::new(Problem::weak_splitting(), b.clone()),
            Request::new(Problem::weak_splitting(), b2.clone()),
            Request::new(Problem::weak_splitting(), b.clone()).seed(7),
            Request::new(
                Problem::WeakSplitting {
                    thm12_constant: 1.5,
                },
                b.clone(),
            ),
            Request::new(Problem::WeakMulticolor, b.clone()),
            Request::new(
                Problem::MulticolorSplitting {
                    colors: 6,
                    lambda: 0.6,
                },
                b.clone(),
            ),
            Request::new(
                Problem::MulticolorSplitting {
                    colors: 7,
                    lambda: 0.6,
                },
                b.clone(),
            ),
            Request::new(
                Problem::UniformSplitting {
                    eps: None,
                    min_degree: None,
                },
                g.clone(),
            ),
            Request::new(
                Problem::UniformSplitting {
                    eps: Some(0.25),
                    min_degree: None,
                },
                g.clone(),
            ),
            Request::new(
                Problem::UniformSplitting {
                    eps: None,
                    min_degree: Some(4),
                },
                g.clone(),
            ),
            Request::new(
                Problem::DegreeSplitting {
                    eps: 0.25,
                    engine: Engine::Walk,
                },
                m.clone(),
            ),
            Request::new(
                Problem::DegreeSplitting {
                    eps: 0.25,
                    engine: Engine::EulerianOracle,
                },
                m.clone(),
            ),
            Request::new(
                Problem::EdgeColoring {
                    base_degree: Some(4),
                    engine: EdgeSplitEngine::Walk,
                },
                g.clone(),
            ),
            Request::new(
                Problem::EdgeColoring {
                    base_degree: Some(4),
                    engine: EdgeSplitEngine::Eulerian,
                },
                g.clone(),
            ),
            Request::new(
                Problem::DeltaColoring {
                    base_degree: None,
                    max_eps: Some(0.2),
                },
                g.clone(),
            ),
            mis(Instance::from(g.clone())),
            mis(Instance::from(g.clone())).deterministic(),
            mis(Instance::from(g.clone())).force_pipeline(Pipeline::Theorem25),
            mis(Instance::from(g.clone())).max_rounds(1e6),
            mis(Instance::from(g.clone())).attempts(3),
            mis(Instance::from(g.clone())).deadline_ms(30_000),
        ];
        for (i, a) in variants.iter().enumerate() {
            let line_a = render_request("interned", Priority::Normal, a);
            for (j, bq) in variants.iter().enumerate() {
                let line_b = render_request("interned", Priority::Normal, bq);
                assert_eq!(
                    request_fingerprint(a) == request_fingerprint(bq),
                    line_a == line_b,
                    "fingerprint/render disagreement between variants {i} and {j}"
                );
            }
        }
    }

    #[test]
    fn idempotency_keys_ride_the_envelope_not_the_request() {
        let g = generators::cycle(6).unwrap();
        let request = Request::new(Problem::Mis { base_degree: None }, g).seed(3);
        let keyed = render_request_with_key("k1", Priority::Normal, Some("retry-abc"), &request);
        assert!(
            keyed.contains(r#""idempotency_key":"retry-abc""#),
            "{keyed}"
        );
        let (envelope, parsed) = parse_request(&keyed).unwrap();
        assert_eq!(envelope.idempotency_key.as_deref(), Some("retry-abc"));
        // the key is transport metadata: the solved Request is identical
        // to the keyless rendering's, so the solve (and its bytes)
        // cannot depend on it
        let plain = render_request("k1", Priority::Normal, &request);
        let (plain_env, plain_parsed) = parse_request(&plain).unwrap();
        assert_eq!(plain_env.idempotency_key, None);
        assert_eq!(parsed, plain_parsed);
    }

    #[test]
    fn envelope_scan_surfaces_the_deadline_budget() {
        let line = r#"{"v":1,"type":"request","id":"d1","deadline_ms":250,"problem":{"name":"mis"},"instance":{"kind":"host","nodes":1,"edges":[]}}"#;
        match scan_envelope(line).unwrap() {
            ClientFrame::Request(envelope) => assert_eq!(envelope.deadline_ms, Some(250)),
            other => panic!("expected a request frame, got {other:?}"),
        }
        let (_, request) = parse_request(line).unwrap();
        assert_eq!(request.budget().deadline_ms, Some(250));
    }

    #[test]
    fn unknown_problem_and_instance_fields_are_typed_errors() {
        let bad_problem = r#"{"v":1,"type":"request","id":"x","problem":{"name":"mis","basedegree":4},"instance":{"kind":"host","nodes":1,"edges":[]}}"#;
        assert_eq!(
            parse_request(bad_problem).unwrap_err().kind(),
            "invalid-request"
        );
        let bad_instance = r#"{"v":1,"type":"request","id":"x","problem":{"name":"mis"},"instance":{"kind":"host","nodes":1,"edges":[],"n":1}}"#;
        assert_eq!(
            parse_request(bad_instance).unwrap_err().kind(),
            "invalid-request"
        );
        let bad_edge = r#"{"v":1,"type":"request","id":"x","problem":{"name":"mis"},"instance":{"kind":"multigraph","nodes":2,"edges":[[0,5]]}}"#;
        let err = parse_request(bad_edge).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn reply_frames_embed_payload_last() {
        let frame = solution_frame("r9", 4, None, r#"{"event":"solution","x":1}"#);
        assert_eq!(
            frame,
            r#"{"v":1,"type":"solution","id":"r9","seq":4,"solution":{"event":"solution","x":1}}"#
        );
        let timed = error_frame(
            "r9",
            5,
            Some(Timing {
                queued_ns: 10,
                solve_ns: 20,
            }),
            r#"{"event":"error"}"#,
        );
        assert_eq!(
            timed,
            r#"{"v":1,"type":"error","id":"r9","seq":5,"queued_ns":10,"solve_ns":20,"error":{"event":"error"}}"#
        );
    }

    #[test]
    fn replayed_frames_keep_the_payload_last_and_flag_before_it() {
        let payload = r#"{"event":"solution","x":1}"#;
        let frame = replayed_frame(true, "r9", 4, payload);
        assert_eq!(
            frame,
            r#"{"v":1,"type":"solution","id":"r9","seq":4,"replayed":true,"solution":{"event":"solution","x":1}}"#
        );
        let reply = split_reply(&frame).unwrap();
        assert!(reply.replayed);
        assert_eq!(reply.payload, Some(payload));
        // fresh frames parse as not-replayed
        assert!(
            !split_reply(&solution_frame("r9", 4, None, payload))
                .unwrap()
                .replayed
        );
    }

    #[test]
    fn split_reply_recovers_envelope_and_exact_payload() {
        let payload = r#"{"event":"solution","rounds":0}"#;
        let frame = solution_frame(
            "abc",
            17,
            Some(Timing {
                queued_ns: 3,
                solve_ns: 9,
            }),
            payload,
        );
        let reply = split_reply(&frame).unwrap();
        assert_eq!(reply.frame_type, "solution");
        assert_eq!(reply.id, "abc");
        assert_eq!(reply.seq, 17);
        assert_eq!(
            reply.timing,
            Some(Timing {
                queued_ns: 3,
                solve_ns: 9
            })
        );
        assert_eq!(reply.payload, Some(payload));

        let hb = heartbeat_frame("", 0, StatsSnapshot::default());
        let reply = split_reply(&hb).unwrap();
        assert_eq!(reply.frame_type, "heartbeat");
        assert_eq!(reply.payload, None);

        assert!(split_reply("not json").is_none());
        assert!(
            split_reply(r#"{"v":2,"type":"solution","id":"x","seq":0,"solution":{}}"#).is_none()
        );
    }
}
