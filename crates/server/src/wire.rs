//! The JSON-line wire codec: frame schemas, the request parser, the
//! client-side request renderer, and the reply-frame assemblers.
//!
//! The protocol is specified in `docs/PROTOCOL.md`; a doc-sync test
//! (`tests/protocol_doc.rs`) pins every worked example there to the real
//! output of this module, so the spec cannot drift from the code.
//!
//! Wire failures are reported through the same closed
//! [`ApiError`] taxonomy the in-process boundary uses: malformed frames
//! map to `invalid-request`, admission refusals to `overloaded`. The
//! embedded solution payload of a reply frame is byte-for-byte
//! [`Solution::to_json_line`](splitting_api::Solution::to_json_line) —
//! the server adds an envelope, never re-renders.

use crate::json::{self, Json, Number};
use degree_split::Engine;
use splitgraph::{BipartiteGraph, Graph, MultiGraph};
use splitting_api::render::JsonObject;
use splitting_api::{ApiError, Instance, Pipeline, Problem, Request};
use splitting_reductions::EdgeSplitEngine;

/// The wire protocol version this build speaks. Every frame carries
/// `"v":1`; other versions are rejected with a typed error.
pub const PROTOCOL_VERSION: u64 = 1;

/// Hard cap on the `id` field, in bytes.
pub const MAX_ID_BYTES: usize = 128;

/// Scheduling priority of a request. Workers always drain `high` before
/// `normal` before `low`; within one lane, requests run in arrival order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Served before everything else.
    High,
    /// The default lane.
    #[default]
    Normal,
    /// Served only when the other lanes are empty.
    Low,
}

impl Priority {
    /// Number of priority lanes.
    pub const COUNT: usize = 3;

    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<Priority> {
        match s {
            "high" => Some(Priority::High),
            "normal" => Some(Priority::Normal),
            "low" => Some(Priority::Low),
            _ => None,
        }
    }

    /// The queue lane index (0 = most urgent).
    pub fn lane(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

/// The envelope of a request frame: everything admission control needs,
/// extracted without parsing the (potentially large) problem/instance
/// payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Client-chosen request id, echoed on the reply frame.
    pub id: String,
    /// Scheduling priority.
    pub priority: Priority,
    /// Optional wall-clock budget (ms, counted from admission). The
    /// envelope scan surfaces it so the queue can expire jobs without
    /// parsing their payloads.
    pub deadline_ms: Option<u64>,
    /// Optional client-supplied idempotency key. A request whose key
    /// matches an already-completed one is answered from the reply
    /// cache, flagged `"replayed":true`, instead of being solved twice
    /// — the retry-after-reconnect contract (see `docs/PROTOCOL.md`
    /// § Durability and idempotency). Absent key = no caching.
    pub idempotency_key: Option<String>,
    /// Optional instance handle (32-hex, see [`render_handle`]). When
    /// set, the frame carries no inline `instance`; the server resolves
    /// the handle against its interned-instance table at admission.
    /// Exactly one of handle / inline instance is present — the
    /// envelope scan enforces the exclusion.
    pub handle: Option<String>,
}

/// One scanned client frame, classified by `type`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientFrame {
    /// A `request` frame (body not yet parsed — workers do that).
    Request(Envelope),
    /// An `upload` frame: intern the carried instance server-side and
    /// reply with its handle (body not yet parsed — ingest does that).
    Upload {
        /// Echoed id.
        id: String,
    },
    /// A `release` frame: drop an interned instance.
    Release {
        /// Echoed id.
        id: String,
        /// The 32-hex handle to drop (format-validated by the scan).
        handle: String,
    },
    /// A `mutate` frame: apply an edge-delta batch to an interned
    /// bipartite instance and reply with its re-derived handle (edit
    /// lists not yet parsed — ingest does that).
    Mutate {
        /// Echoed id.
        id: String,
        /// The 32-hex handle of the instance to patch.
        handle: String,
        /// Optional client retry token: a mutate whose key matches an
        /// already-delivered `mutated` reply replays it from the cache
        /// instead of re-patching (the handle has already moved, so a
        /// blind retry would otherwise fail `unknown instance handle`).
        idempotency_key: Option<String>,
    },
    /// A `ping` frame; the server replies with a heartbeat.
    Ping {
        /// Echoed id ("" when the ping carried none).
        id: String,
    },
    /// A `shutdown` frame; the server drains and closes the stream.
    Shutdown,
}

fn invalid(field: &'static str, reason: impl Into<String>) -> ApiError {
    ApiError::InvalidRequest {
        field,
        reason: reason.into(),
    }
}

const REQUEST_KEYS: &[&str] = &[
    "v",
    "type",
    "id",
    "priority",
    "problem",
    "instance",
    "determinism",
    "seed",
    "force_pipeline",
    "max_rounds",
    "attempts",
    "deadline_ms",
    "idempotency_key",
    "handle",
];
const UPLOAD_KEYS: &[&str] = &["v", "type", "id", "instance"];
const RELEASE_KEYS: &[&str] = &["v", "type", "id", "handle"];
const MUTATE_KEYS: &[&str] = &[
    "v",
    "type",
    "id",
    "handle",
    "inserts",
    "deletes",
    "idempotency_key",
];
const PING_KEYS: &[&str] = &["v", "type", "id"];
const SHUTDOWN_KEYS: &[&str] = &["v", "type"];

fn check_version(raw: Option<&&str>) -> Result<(), ApiError> {
    match raw {
        Some(raw) => {
            let v = json::parse(raw)
                .ok()
                .and_then(|j| j.as_number())
                .and_then(Number::as_u64);
            if v == Some(PROTOCOL_VERSION) {
                Ok(())
            } else {
                Err(invalid(
                    "v",
                    format!("unsupported protocol version {raw}; this server speaks v{PROTOCOL_VERSION}"),
                ))
            }
        }
        None => Err(invalid(
            "v",
            format!("missing protocol version; send \"v\":{PROTOCOL_VERSION}"),
        )),
    }
}

fn parse_id(raw: Option<&&str>) -> Result<String, ApiError> {
    let Some(raw) = raw else {
        return Err(invalid(
            "id",
            "request frames must carry a client-chosen id",
        ));
    };
    let id = json::parse(raw)
        .ok()
        .and_then(|j| j.as_str().map(str::to_owned))
        .ok_or_else(|| invalid("id", "id must be a JSON string"))?;
    if id.is_empty() {
        return Err(invalid("id", "id must be non-empty"));
    }
    if id.len() > MAX_ID_BYTES {
        return Err(invalid(
            "id",
            format!("id exceeds {MAX_ID_BYTES} bytes ({} given)", id.len()),
        ));
    }
    Ok(id)
}

fn parse_priority(raw: Option<&&str>) -> Result<Priority, ApiError> {
    match raw {
        None => Ok(Priority::Normal),
        Some(raw) => {
            let s = json::parse(raw)
                .ok()
                .and_then(|j| j.as_str().map(str::to_owned))
                .ok_or_else(|| invalid("priority", "priority must be a JSON string"))?;
            Priority::parse(&s).ok_or_else(|| {
                invalid(
                    "priority",
                    format!("unknown priority \"{s}\"; use high, normal, or low"),
                )
            })
        }
    }
}

/// Parses a raw `"idempotency_key"` value (shared by request and mutate
/// frames): a non-empty JSON string of at most [`MAX_ID_BYTES`] bytes.
fn parse_idempotency_key(raw: Option<&&str>) -> Result<Option<String>, ApiError> {
    let Some(raw) = raw else { return Ok(None) };
    let key = json::parse(raw)
        .ok()
        .and_then(|j| j.as_str().map(str::to_owned))
        .ok_or_else(|| invalid("idempotency_key", "must be a JSON string"))?;
    if key.is_empty() {
        return Err(invalid(
            "idempotency_key",
            "must be non-empty (omit the field for no idempotency)",
        ));
    }
    if key.len() > MAX_ID_BYTES {
        return Err(invalid(
            "idempotency_key",
            format!("exceeds {MAX_ID_BYTES} bytes ({} given)", key.len()),
        ));
    }
    Ok(Some(key))
}

/// Classifies one line and validates its envelope (`v`, `type`, `id`,
/// `priority`, and key-set strictness) **without** parsing the problem or
/// instance payloads — those are brace-skipped, so admission control on
/// a megabyte-scale frame costs a single scan. The deferred payload is
/// parsed strictly by the worker ([`parse_request`]); a body error then
/// comes back as a typed error frame under this envelope's id.
///
/// # Errors
///
/// [`ApiError::InvalidRequest`] for anything that is not a structurally
/// valid v1 client frame.
pub fn scan_envelope(line: &str) -> Result<ClientFrame, ApiError> {
    let fields = json::scan_top_level(line)
        .map_err(|e| invalid("frame", format!("not a JSON object: {e}")))?;
    classify_frame(&fields)
}

/// Everything the ingest scan harvested beyond the envelope, as byte
/// ranges into the submitted line (ranges survive the ingest copy of
/// the line into the job, slices would not). A worker holding this
/// skips every byte of re-scanning: it reslices the fields, parses the
/// small ones, and builds the graph straight from the pre-parsed edge
/// pairs.
pub struct PreScan {
    /// Top-level `(key, value)` ranges of the frame.
    pub fields: Vec<(std::ops::Range<usize>, std::ops::Range<usize>)>,
    /// `(key, value)` ranges of the instance object's own fields.
    pub instance_fields: Vec<(std::ops::Range<usize>, std::ops::Range<usize>)>,
    /// Edge pairs parsed by the canonical fast grammar.
    pub edge_pairs: Vec<(usize, usize)>,
}

/// [`scan_envelope`] plus a [`PreScan`] when the line is an
/// inline-instance request frame whose instance the fused scan fully
/// served. Classification and errors are byte-identical to
/// [`scan_envelope`]; the prescan is a side harvest for the worker.
///
/// # Errors
///
/// Exactly the [`ApiError`]s of [`scan_envelope`].
pub fn scan_envelope_prescanned(line: &str) -> Result<(ClientFrame, Option<PreScan>), ApiError> {
    let scan =
        json::scan_frame(line).map_err(|e| invalid("frame", format!("not a JSON object: {e}")))?;
    let frame = classify_frame(&scan.fields)?;
    let base = line.as_ptr() as usize;
    let to_ranges = |fields: &[(&str, &str)]| {
        fields
            .iter()
            .map(|(k, v)| {
                let ks = k.as_ptr() as usize - base;
                let vs = v.as_ptr() as usize - base;
                (ks..ks + k.len(), vs..vs + v.len())
            })
            .collect()
    };
    let prescan = match (&frame, scan.instance_fields, scan.edge_pairs) {
        (ClientFrame::Request(envelope), Some(instance_fields), Some(edge_pairs))
            if envelope.handle.is_none() =>
        {
            Some(PreScan {
                fields: to_ranges(&scan.fields),
                instance_fields: to_ranges(&instance_fields),
                edge_pairs,
            })
        }
        _ => None,
    };
    Ok((frame, prescan))
}

/// Parses a raw `"handle"` value: a JSON string of exactly 32 lowercase
/// hex digits (the rendering of [`instance_fingerprint`]).
fn parse_handle_field(raw: &str) -> Result<String, ApiError> {
    let handle = json::parse(raw)
        .ok()
        .and_then(|j| j.as_str().map(str::to_owned))
        .ok_or_else(|| invalid("handle", "must be a JSON string"))?;
    if parse_handle(&handle).is_none() {
        return Err(invalid(
            "handle",
            format!("\"{handle}\" is not a 32-digit lowercase-hex instance handle"),
        ));
    }
    Ok(handle)
}

/// [`scan_envelope`] over already-scanned top-level fields, so callers
/// that need the field slices anyway (the full request parse, the
/// ingest upload path) pay for one scan instead of two.
fn classify_frame(fields: &[(&str, &str)]) -> Result<ClientFrame, ApiError> {
    let get = |key: &str| fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v);
    check_version(get("v"))?;
    let ty = match get("type") {
        Some(raw) => json::parse(raw)
            .ok()
            .and_then(|j| j.as_str().map(str::to_owned))
            .ok_or_else(|| invalid("type", "type must be a JSON string"))?,
        None => return Err(invalid("type", "missing frame type")),
    };
    let allowed: &[&str] = match ty.as_str() {
        "request" => REQUEST_KEYS,
        "upload" => UPLOAD_KEYS,
        "release" => RELEASE_KEYS,
        "mutate" => MUTATE_KEYS,
        "ping" => PING_KEYS,
        "shutdown" => SHUTDOWN_KEYS,
        other => return Err(invalid(
            "type",
            format!(
                "unknown frame type \"{other}\"; use request, upload, release, mutate, ping, or shutdown"
            ),
        )),
    };
    for (key, _) in fields {
        if !allowed.contains(key) {
            return Err(invalid(
                "frame",
                format!("unknown field \"{key}\" on a {ty} frame"),
            ));
        }
    }
    match ty.as_str() {
        "request" => {
            let id = parse_id(get("id"))?;
            let priority = parse_priority(get("priority"))?;
            let deadline_ms = match get("deadline_ms") {
                None => None,
                Some(raw) => Some(
                    json::parse(raw)
                        .ok()
                        .and_then(|j| j.as_number())
                        .and_then(Number::as_u64)
                        .ok_or_else(|| {
                            invalid("deadline_ms", "must be an unsigned integer (milliseconds)")
                        })?,
                ),
            };
            let idempotency_key = parse_idempotency_key(get("idempotency_key"))?;
            let handle = match get("handle") {
                None => None,
                Some(raw) => Some(parse_handle_field(raw)?),
            };
            if get("problem").is_none() {
                return Err(invalid("problem", "request frames must carry a problem"));
            }
            match (get("instance").is_some(), handle.is_some()) {
                (true, true) => {
                    return Err(invalid(
                        "instance",
                        "carry either an inline instance or a handle, not both",
                    ))
                }
                (false, false) => {
                    return Err(invalid(
                        "instance",
                        "request frames must carry an instance or an instance handle",
                    ))
                }
                _ => {}
            }
            Ok(ClientFrame::Request(Envelope {
                id,
                priority,
                deadline_ms,
                idempotency_key,
                handle,
            }))
        }
        "upload" => {
            let id = parse_id(get("id"))?;
            if get("instance").is_none() {
                return Err(invalid("instance", "upload frames must carry an instance"));
            }
            Ok(ClientFrame::Upload { id })
        }
        "release" => {
            let id = parse_id(get("id"))?;
            let handle = match get("handle") {
                Some(raw) => parse_handle_field(raw)?,
                None => {
                    return Err(invalid(
                        "handle",
                        "release frames must name the handle to drop",
                    ))
                }
            };
            Ok(ClientFrame::Release { id, handle })
        }
        "mutate" => {
            let id = parse_id(get("id"))?;
            let handle = match get("handle") {
                Some(raw) => parse_handle_field(raw)?,
                None => {
                    return Err(invalid(
                        "handle",
                        "mutate frames must name the handle to patch",
                    ))
                }
            };
            if get("inserts").is_none() && get("deletes").is_none() {
                return Err(invalid(
                    "frame",
                    "mutate frames must carry inserts and/or deletes",
                ));
            }
            let idempotency_key = parse_idempotency_key(get("idempotency_key"))?;
            Ok(ClientFrame::Mutate {
                id,
                handle,
                idempotency_key,
            })
        }
        "ping" => {
            let id = match get("id") {
                Some(_) => parse_id(get("id"))?,
                None => String::new(),
            };
            Ok(ClientFrame::Ping { id })
        }
        _ => Ok(ClientFrame::Shutdown),
    }
}

// ------------------------------------------------------- request parsing

fn field_str(fields: &[(&str, &str)], key: &'static str) -> Result<Option<String>, ApiError> {
    match fields.iter().find(|(k, _)| *k == key) {
        None => Ok(None),
        Some((_, raw)) => json::parse(raw)
            .ok()
            .and_then(|j| j.as_str().map(str::to_owned))
            .map(Some)
            .ok_or_else(|| invalid(key, "must be a JSON string")),
    }
}

fn field_number(fields: &[(&str, &str)], key: &'static str) -> Result<Option<Number>, ApiError> {
    match fields.iter().find(|(k, _)| *k == key) {
        None => Ok(None),
        Some((_, raw)) => json::parse(raw)
            .ok()
            .and_then(|j| j.as_number())
            .map(Some)
            .ok_or_else(|| invalid(key, "must be a JSON number")),
    }
}

fn obj_str(obj: &Json, key: &'static str, ctx: &'static str) -> Result<Option<String>, ApiError> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => v.as_str().map(|s| Some(s.to_owned())).ok_or_else(|| {
            invalid(
                ctx,
                format!("{key} must be a string, got {}", v.type_name()),
            )
        }),
    }
}

fn obj_number(
    obj: &Json,
    key: &'static str,
    ctx: &'static str,
) -> Result<Option<Number>, ApiError> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => v.as_number().map(Some).ok_or_else(|| {
            invalid(
                ctx,
                format!("{key} must be a number, got {}", v.type_name()),
            )
        }),
    }
}

fn obj_usize(obj: &Json, key: &'static str, ctx: &'static str) -> Result<Option<usize>, ApiError> {
    match obj_number(obj, key, ctx)? {
        None => Ok(None),
        Some(n) => n
            .as_usize()
            .map(Some)
            .ok_or_else(|| invalid(ctx, format!("{key} must be a non-negative integer"))),
    }
}

fn check_keys(obj: &Json, allowed: &[&str], ctx: &'static str) -> Result<(), ApiError> {
    for (key, _) in obj.as_object().expect("checked object") {
        if !allowed.iter().any(|a| a == key) {
            return Err(invalid(ctx, format!("unknown field \"{key}\"")));
        }
    }
    Ok(())
}

fn parse_problem(raw: &str) -> Result<Problem, ApiError> {
    let obj = json::parse(raw).map_err(|e| invalid("problem", e.to_string()))?;
    if obj.as_object().is_none() {
        return Err(invalid("problem", "must be a JSON object"));
    }
    let name = obj_str(&obj, "name", "problem")?
        .ok_or_else(|| invalid("problem", "missing problem name"))?;
    match name.as_str() {
        "weak-splitting" => {
            check_keys(&obj, &["name", "thm12_constant"], "problem")?;
            let c = obj_number(&obj, "thm12_constant", "problem")?.map_or(3.0, Number::as_f64);
            Ok(Problem::WeakSplitting { thm12_constant: c })
        }
        "weak-multicolor" => {
            check_keys(&obj, &["name"], "problem")?;
            Ok(Problem::WeakMulticolor)
        }
        "multicolor-splitting" => {
            check_keys(&obj, &["name", "colors", "lambda"], "problem")?;
            let colors = obj_number(&obj, "colors", "problem")?
                .and_then(Number::as_u32)
                .ok_or_else(|| invalid("problem", "colors must be an integer palette bound"))?;
            let lambda = obj_number(&obj, "lambda", "problem")?
                .ok_or_else(|| invalid("problem", "missing per-color load cap lambda"))?
                .as_f64();
            Ok(Problem::MulticolorSplitting { colors, lambda })
        }
        "uniform-splitting" => {
            check_keys(&obj, &["name", "eps", "min_degree"], "problem")?;
            Ok(Problem::UniformSplitting {
                eps: obj_number(&obj, "eps", "problem")?.map(Number::as_f64),
                min_degree: obj_usize(&obj, "min_degree", "problem")?,
            })
        }
        "degree-splitting" => {
            check_keys(&obj, &["name", "eps", "engine"], "problem")?;
            let eps = obj_number(&obj, "eps", "problem")?
                .ok_or_else(|| invalid("problem", "missing contract accuracy eps"))?
                .as_f64();
            let engine = match obj_str(&obj, "engine", "problem")?.as_deref() {
                None | Some("eulerian-oracle") => Engine::EulerianOracle,
                Some("walk") => Engine::Walk,
                Some(other) => {
                    return Err(invalid(
                        "problem",
                        format!("unknown engine \"{other}\"; use eulerian-oracle or walk"),
                    ))
                }
            };
            Ok(Problem::DegreeSplitting { eps, engine })
        }
        "sinkless-orientation" => {
            check_keys(&obj, &["name"], "problem")?;
            Ok(Problem::SinklessOrientation)
        }
        "delta-coloring" => {
            check_keys(&obj, &["name", "base_degree", "max_eps"], "problem")?;
            Ok(Problem::DeltaColoring {
                base_degree: obj_usize(&obj, "base_degree", "problem")?,
                max_eps: obj_number(&obj, "max_eps", "problem")?.map(Number::as_f64),
            })
        }
        "edge-coloring" => {
            check_keys(&obj, &["name", "base_degree", "engine"], "problem")?;
            let engine = match obj_str(&obj, "engine", "problem")?.as_deref() {
                None | Some("eulerian") => EdgeSplitEngine::Eulerian,
                Some("walk") => EdgeSplitEngine::Walk,
                Some(other) => {
                    return Err(invalid(
                        "problem",
                        format!("unknown engine \"{other}\"; use eulerian or walk"),
                    ))
                }
            };
            Ok(Problem::EdgeColoring {
                base_degree: obj_usize(&obj, "base_degree", "problem")?,
                engine,
            })
        }
        "mis" => {
            check_keys(&obj, &["name", "base_degree"], "problem")?;
            Ok(Problem::Mis {
                base_degree: obj_usize(&obj, "base_degree", "problem")?,
            })
        }
        other => Err(invalid("problem", format!("unknown problem \"{other}\""))),
    }
}

/// Parses a raw `"instance"` object (as sliced out of a frame by the
/// envelope scan) into a typed [`Instance`], reporting whether the
/// zero-copy edge scanner served the edge list (`false` = the strict
/// fallback parser ran; the server counts those on its
/// [`StatsSnapshot::parse_fallbacks`] gauge).
///
/// # Errors
///
/// [`ApiError::InvalidRequest`] on the `instance` field. Edge-list error
/// offsets are reported in the coordinate system of the instance object
/// — the same one every other instance error uses — not of the inner
/// edges slice.
pub fn parse_instance_traced(raw: &str) -> Result<(Instance, bool), ApiError> {
    let (fields, fused_pairs) = json::scan_object_with_edges(raw)
        .map_err(|e| invalid("instance", format!("not a JSON object: {e}")))?;
    parse_instance_from_parts(raw, &fields, fused_pairs)
}

/// [`parse_instance_traced`] over an already-scanned field list, so the
/// prescanned ingest path ([`parse_request_prescanned`]) skips the
/// object re-scan entirely. `fused_pairs` carries edge pairs the fused
/// scan already parsed on the canonical fast grammar (`fast = true`).
fn parse_instance_from_parts(
    raw: &str,
    fields: &[(&str, &str)],
    mut fused_pairs: Option<Vec<(usize, usize)>>,
) -> Result<(Instance, bool), ApiError> {
    let get = |key: &str| fields.iter().find(|(k, _)| *k == key).map(|(_, v)| *v);
    let kind = match get("kind") {
        Some(raw) => json::parse(raw)
            .ok()
            .and_then(|j| j.as_str().map(str::to_owned))
            .ok_or_else(|| invalid("instance", "kind must be a JSON string"))?,
        None => return Err(invalid("instance", "missing instance kind")),
    };
    let small_usize = |key: &'static str| -> Result<Option<usize>, ApiError> {
        match get(key) {
            None => Ok(None),
            Some(raw) => json::parse(raw)
                .ok()
                .and_then(|j| j.as_number())
                .and_then(Number::as_usize)
                .map(Some)
                .ok_or_else(|| {
                    invalid("instance", format!("{key} must be a non-negative integer"))
                }),
        }
    };
    let mut edges = || -> Result<(Vec<(usize, usize)>, bool), ApiError> {
        match get("edges") {
            // the fused scan already parsed the canonical fast grammar
            // in the same pass that located the value's end
            Some(_) if fused_pairs.is_some() => {
                Ok((fused_pairs.take().expect("checked above"), true))
            }
            Some(slice) => json::scan_edge_pairs(slice).map_err(|mut e| {
                // the edge parser reports offsets relative to the edges
                // slice; shift into the instance object so every
                // instance error shares one coordinate system
                e.offset += slice.as_ptr() as usize - raw.as_ptr() as usize;
                invalid("instance", format!("edges: {e}"))
            }),
            None => Err(invalid("instance", "missing edges array")),
        }
    };
    let check_keys = |allowed: &[&str]| -> Result<(), ApiError> {
        for (key, _) in fields {
            if !allowed.contains(key) {
                return Err(invalid(
                    "instance",
                    format!("unknown field \"{key}\" on a {kind} instance"),
                ));
            }
        }
        Ok(())
    };
    match kind.as_str() {
        "bipartite" => {
            check_keys(&["kind", "left", "right", "edges"])?;
            let left = small_usize("left")?
                .ok_or_else(|| invalid("instance", "missing left (constraint count)"))?;
            let right = small_usize("right")?
                .ok_or_else(|| invalid("instance", "missing right (variable count)"))?;
            let (pairs, fast) = edges()?;
            let b = BipartiteGraph::from_edges_bulk(left, right, &pairs)
                .map_err(|e| invalid("instance", e.to_string()))?;
            Ok((Instance::Bipartite(b), fast))
        }
        "host" => {
            check_keys(&["kind", "nodes", "edges"])?;
            let n =
                small_usize("nodes")?.ok_or_else(|| invalid("instance", "missing node count"))?;
            let (pairs, fast) = edges()?;
            let g = Graph::from_edges_bulk(n, &pairs)
                .map_err(|e| invalid("instance", e.to_string()))?;
            Ok((Instance::Host(g), fast))
        }
        "multigraph" => {
            check_keys(&["kind", "nodes", "edges"])?;
            let n =
                small_usize("nodes")?.ok_or_else(|| invalid("instance", "missing node count"))?;
            let (endpoints, fast) = edges()?;
            // from_endpoints panics on out-of-range ids; validate first so
            // malformed frames stay typed errors
            for &(a, b) in &endpoints {
                if a >= n || b >= n {
                    return Err(invalid(
                        "instance",
                        format!("edge endpoint ({a}, {b}) out of range for {n} nodes"),
                    ));
                }
            }
            Ok((
                Instance::Multi(MultiGraph::from_endpoints(n, endpoints)),
                fast,
            ))
        }
        other => Err(invalid(
            "instance",
            format!("unknown instance kind \"{other}\"; use bipartite, host, or multigraph"),
        )),
    }
}

/// Fully parses a `request` frame into its envelope and the typed
/// [`Request`] the in-process API solves. Strict: unknown fields anywhere
/// in the frame, the problem object, or the instance object are typed
/// errors (typos must not silently become defaults).
///
/// # Errors
///
/// [`ApiError::InvalidRequest`] describing the first offending field.
pub fn parse_request(line: &str) -> Result<(Envelope, Request), ApiError> {
    parse_request_traced(line).map(|(envelope, request, _)| (envelope, request))
}

/// [`parse_request`] plus the zero-copy tracing bit of
/// [`parse_instance_traced`]: `true` when the fast edge scanner served
/// the instance, `false` when the strict fallback ran. The worker loop
/// uses this to maintain the fast-path fallback counter.
///
/// # Errors
///
/// As [`parse_request`]. Handle-form frames are an error here: the
/// handle table lives in the server, which resolves handles at
/// admission and enqueues an already-typed request.
pub fn parse_request_traced(line: &str) -> Result<(Envelope, Request, bool), ApiError> {
    let fields = json::scan_top_level(line)
        .map_err(|e| invalid("frame", format!("not a JSON object: {e}")))?;
    let envelope = match classify_frame(&fields)? {
        ClientFrame::Request(envelope) => envelope,
        other => {
            return Err(invalid(
                "type",
                format!("expected a request frame, got {other:?}"),
            ))
        }
    };
    if envelope.handle.is_some() {
        return Err(invalid(
            "handle",
            "instance handles are resolved by the server at admission; \
             this parser needs an inline instance",
        ));
    }
    let get = |key: &str| fields.iter().find(|(k, _)| *k == key).map(|(_, v)| *v);
    let problem = parse_problem(get("problem").expect("checked by classify_frame"))?;
    let (instance, fast) =
        parse_instance_traced(get("instance").expect("checked by classify_frame"))?;
    let request = apply_policy_fields(&fields, &envelope, Request::new(problem, instance))?;
    Ok((envelope, request, fast))
}

/// [`parse_request_traced`] fed by the ingest thread's [`PreScan`]: no
/// byte of the line is re-scanned — the field slices are restored from
/// the recorded ranges and the edge list was already parsed by the
/// fused fast grammar (so `fast` is `true` by construction). Falls back
/// to the full parse if the ranges do not reslice cleanly (they always
/// do for a prescan built from the same line content).
///
/// # Errors
///
/// As [`parse_request_traced`] — the prescan carries no validation the
/// full parse would not redo identically.
pub fn parse_request_prescanned(
    line: &str,
    pre: PreScan,
) -> Result<(Envelope, Request, bool), ApiError> {
    let reslice = |ranges: &[(std::ops::Range<usize>, std::ops::Range<usize>)]| {
        ranges
            .iter()
            .map(|(k, v)| Some((line.get(k.clone())?, line.get(v.clone())?)))
            .collect::<Option<Vec<(&str, &str)>>>()
    };
    let (Some(fields), Some(instance_fields)) =
        (reslice(&pre.fields), reslice(&pre.instance_fields))
    else {
        return parse_request_traced(line);
    };
    let envelope = match classify_frame(&fields)? {
        ClientFrame::Request(envelope) => envelope,
        other => {
            return Err(invalid(
                "type",
                format!("expected a request frame, got {other:?}"),
            ))
        }
    };
    let get = |key: &str| fields.iter().find(|(k, _)| *k == key).map(|(_, v)| *v);
    let problem = parse_problem(get("problem").expect("checked by classify_frame"))?;
    let raw = get("instance").expect("checked by classify_frame");
    let (instance, fast) = parse_instance_from_parts(raw, &instance_fields, Some(pre.edge_pairs))?;
    let request = apply_policy_fields(&fields, &envelope, Request::new(problem, instance))?;
    Ok((envelope, request, fast))
}

/// Parses a handle-form `request` frame against its already-resolved
/// shared instance: everything [`parse_request`] does, except that the
/// instance comes from the server's handle table (structurally shared,
/// no per-request graph allocation) instead of the frame body.
///
/// # Errors
///
/// [`ApiError::InvalidRequest`] for frames that are not handle-form
/// requests or whose policy fields are malformed.
pub fn parse_request_with_instance(
    line: &str,
    instance: std::sync::Arc<Instance>,
) -> Result<(Envelope, Request), ApiError> {
    let fields = json::scan_top_level(line)
        .map_err(|e| invalid("frame", format!("not a JSON object: {e}")))?;
    let envelope = match classify_frame(&fields)? {
        ClientFrame::Request(envelope) => envelope,
        other => {
            return Err(invalid(
                "type",
                format!("expected a request frame, got {other:?}"),
            ))
        }
    };
    if envelope.handle.is_none() {
        return Err(invalid(
            "handle",
            "this frame carries an inline instance; use parse_request",
        ));
    }
    let get = |key: &str| fields.iter().find(|(k, _)| *k == key).map(|(_, v)| *v);
    let problem = parse_problem(get("problem").expect("checked by classify_frame"))?;
    let request = apply_policy_fields(&fields, &envelope, Request::from_shared(problem, instance))?;
    Ok((envelope, request))
}

/// Applies the policy tail of a request frame — determinism, seed,
/// pipeline override, budget — shared by the inline and handle-form
/// parsers.
fn apply_policy_fields(
    fields: &[(&str, &str)],
    envelope: &Envelope,
    mut request: Request,
) -> Result<Request, ApiError> {
    match field_str(fields, "determinism")?.as_deref() {
        None => {}
        Some("deterministic") => request = request.deterministic(),
        Some("randomized") => request = request.randomized(),
        Some(other) => {
            return Err(invalid(
                "determinism",
                format!("unknown policy \"{other}\"; use deterministic or randomized"),
            ))
        }
    }
    if let Some(n) = field_number(fields, "seed")? {
        let seed = n
            .as_u64()
            .ok_or_else(|| invalid("seed", "must be an unsigned 64-bit integer"))?;
        request = request.seed(seed);
    }
    if let Some(name) = field_str(fields, "force_pipeline")? {
        let pipeline = [
            Pipeline::Theorem27,
            Pipeline::Theorem25,
            Pipeline::ZeroRound,
            Pipeline::Theorem12,
        ]
        .into_iter()
        .find(|p| p.name() == name)
        .ok_or_else(|| {
            invalid(
                "force_pipeline",
                format!(
                    "unknown pipeline \"{name}\"; use theorem27, theorem25, zero-round, or theorem12"
                ),
            )
        })?;
        request = request.force_pipeline(pipeline);
    }
    if let Some(n) = field_number(fields, "max_rounds")? {
        request = request.max_rounds(n.as_f64());
    }
    if let Some(n) = field_number(fields, "attempts")? {
        let attempts = n
            .as_usize()
            .ok_or_else(|| invalid("attempts", "must be a non-negative integer"))?;
        request = request.attempts(attempts);
    }
    if let Some(ms) = envelope.deadline_ms {
        request = request.deadline_ms(ms);
    }
    Ok(request)
}

// ------------------------------------------------------ request rendering

fn render_edges(out: &mut String, edges: impl Iterator<Item = (usize, usize)>) {
    out.push('[');
    let mut first = true;
    for (u, v) in edges {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('[');
        out.push_str(&u.to_string());
        out.push(',');
        out.push_str(&v.to_string());
        out.push(']');
    }
    out.push(']');
}

fn render_instance(instance: &Instance) -> String {
    let mut edges_buf = String::new();
    let mut obj = JsonObject::new();
    match instance {
        Instance::Bipartite(b) => {
            render_edges(&mut edges_buf, b.edges());
            obj.string("kind", "bipartite")
                .uint("left", b.left_count() as u64)
                .uint("right", b.right_count() as u64)
                .raw("edges", &edges_buf);
        }
        Instance::Host(g) => {
            render_edges(&mut edges_buf, g.edges());
            obj.string("kind", "host")
                .uint("nodes", g.node_count() as u64)
                .raw("edges", &edges_buf);
        }
        Instance::Multi(g) => {
            render_edges(&mut edges_buf, (0..g.edge_count()).map(|e| g.endpoints(e)));
            obj.string("kind", "multigraph")
                .uint("nodes", g.node_count() as u64)
                .raw("edges", &edges_buf);
        }
    }
    obj.finish()
}

fn render_problem(problem: &Problem) -> String {
    let mut obj = JsonObject::new();
    obj.string("name", problem.name());
    match *problem {
        Problem::WeakSplitting { thm12_constant } => {
            obj.float("thm12_constant", thm12_constant);
        }
        Problem::WeakMulticolor | Problem::SinklessOrientation => {}
        Problem::MulticolorSplitting { colors, lambda } => {
            obj.uint("colors", u64::from(colors))
                .float("lambda", lambda);
        }
        Problem::UniformSplitting { eps, min_degree } => {
            if let Some(eps) = eps {
                obj.float("eps", eps);
            }
            if let Some(d) = min_degree {
                obj.uint("min_degree", d as u64);
            }
        }
        Problem::DegreeSplitting { eps, engine } => {
            obj.float("eps", eps).string(
                "engine",
                match engine {
                    Engine::EulerianOracle => "eulerian-oracle",
                    Engine::Walk => "walk",
                },
            );
        }
        Problem::DeltaColoring {
            base_degree,
            max_eps,
        } => {
            if let Some(b) = base_degree {
                obj.uint("base_degree", b as u64);
            }
            if let Some(e) = max_eps {
                obj.float("max_eps", e);
            }
        }
        Problem::EdgeColoring {
            base_degree,
            engine,
        } => {
            if let Some(b) = base_degree {
                obj.uint("base_degree", b as u64);
            }
            obj.string(
                "engine",
                match engine {
                    EdgeSplitEngine::Eulerian => "eulerian",
                    EdgeSplitEngine::Walk => "walk",
                },
            );
        }
        Problem::Mis { base_degree } => {
            if let Some(b) = base_degree {
                obj.uint("base_degree", b as u64);
            }
        }
    }
    obj.finish()
}

/// Renders a [`Request`] as a canonical v1 `request` frame — the
/// client-side encoder. [`parse_request`] inverts it exactly
/// (round-trip-tested), so in-process callers can go over the wire
/// without hand-writing JSON.
pub fn render_request(id: &str, priority: Priority, request: &Request) -> String {
    render_request_with_key(id, priority, None, request)
}

/// [`render_request`] with an optional client-supplied idempotency key
/// (rendered right after `priority`; `None` renders the exact same
/// frame as the keyless variant).
pub fn render_request_with_key(
    id: &str,
    priority: Priority,
    idempotency_key: Option<&str>,
    request: &Request,
) -> String {
    let problem = render_problem(request.problem());
    let instance = render_instance(request.instance());
    let mut obj = JsonObject::new();
    obj.uint("v", PROTOCOL_VERSION)
        .string("type", "request")
        .string("id", id)
        .string("priority", priority.name());
    if let Some(key) = idempotency_key {
        obj.string("idempotency_key", key);
    }
    obj.raw("problem", &problem)
        .raw("instance", &instance)
        .string("determinism", request.determinism().name())
        .uint("seed", request.master_seed());
    if let Some(p) = request.pipeline_override() {
        obj.string("force_pipeline", p.name());
    }
    if let Some(r) = request.budget().max_rounds {
        obj.float("max_rounds", r);
    }
    if let Some(a) = request.budget().attempts {
        obj.uint("attempts", a as u64);
    }
    if let Some(ms) = request.budget().deadline_ms {
        obj.uint("deadline_ms", ms);
    }
    obj.finish()
}

/// Renders a `request` frame that references an interned instance by
/// handle instead of carrying it inline — the upload-once/solve-many
/// client encoder. The request's own instance is *not* serialized; the
/// server resolves `handle` against its table at admission.
pub fn render_request_with_handle(
    id: &str,
    priority: Priority,
    handle: &str,
    request: &Request,
) -> String {
    let problem = render_problem(request.problem());
    let mut obj = JsonObject::new();
    obj.uint("v", PROTOCOL_VERSION)
        .string("type", "request")
        .string("id", id)
        .string("priority", priority.name())
        .raw("problem", &problem)
        .string("handle", handle)
        .string("determinism", request.determinism().name())
        .uint("seed", request.master_seed());
    if let Some(p) = request.pipeline_override() {
        obj.string("force_pipeline", p.name());
    }
    if let Some(r) = request.budget().max_rounds {
        obj.float("max_rounds", r);
    }
    if let Some(a) = request.budget().attempts {
        obj.uint("attempts", a as u64);
    }
    if let Some(ms) = request.budget().deadline_ms {
        obj.uint("deadline_ms", ms);
    }
    obj.finish()
}

/// Renders an `upload` frame interning `instance` server-side. The
/// reply is an `uploaded` frame carrying the handle.
pub fn render_upload(id: &str, instance: &Instance) -> String {
    let body = render_instance(instance);
    let mut obj = JsonObject::new();
    obj.uint("v", PROTOCOL_VERSION)
        .string("type", "upload")
        .string("id", id)
        .raw("instance", &body);
    obj.finish()
}

/// Renders a `release` frame dropping an interned instance.
pub fn render_release(id: &str, handle: &str) -> String {
    let mut obj = JsonObject::new();
    obj.uint("v", PROTOCOL_VERSION)
        .string("type", "release")
        .string("id", id)
        .string("handle", handle);
    obj.finish()
}

/// Renders a `mutate` frame applying an edge-delta batch to an interned
/// bipartite instance. Empty lists are omitted (the frame must carry at
/// least one non-empty list to classify).
pub fn render_mutate(
    id: &str,
    handle: &str,
    inserts: &[(usize, usize)],
    deletes: &[(usize, usize)],
) -> String {
    render_mutate_with_key(id, handle, None, inserts, deletes)
}

/// [`render_mutate`] with an optional client-supplied idempotency key
/// (`None` renders the exact same frame as the keyless variant). A keyed
/// mutate whose reply is lost can be retried verbatim: the server
/// replays the cached `mutated` frame instead of failing on the
/// already-moved handle.
pub fn render_mutate_with_key(
    id: &str,
    handle: &str,
    idempotency_key: Option<&str>,
    inserts: &[(usize, usize)],
    deletes: &[(usize, usize)],
) -> String {
    let mut obj = JsonObject::new();
    obj.uint("v", PROTOCOL_VERSION)
        .string("type", "mutate")
        .string("id", id)
        .string("handle", handle);
    if let Some(key) = idempotency_key {
        obj.string("idempotency_key", key);
    }
    let mut buf = String::new();
    if !inserts.is_empty() {
        render_edges(&mut buf, inserts.iter().copied());
        obj.raw("inserts", &buf);
    }
    if !deletes.is_empty() {
        buf.clear();
        render_edges(&mut buf, deletes.iter().copied());
        obj.raw("deletes", &buf);
    }
    obj.finish()
}

/// One edit list of a `mutate` frame: `(left, right)` edge endpoints.
pub type EditList = Vec<(usize, usize)>;

/// Parses the edit lists of a `mutate` frame out of its already-scanned
/// top-level fields: `(inserts, deletes)`, each `[]` when the frame
/// omitted the list. Edits ride the same `[[u,v],...]` grammar as
/// instance edge lists (and the same fast scanner).
///
/// # Errors
///
/// [`ApiError::InvalidRequest`] on a malformed list.
pub fn parse_mutate_edits(fields: &[(&str, &str)]) -> Result<(EditList, EditList), ApiError> {
    let list = |key: &'static str| -> Result<EditList, ApiError> {
        match fields.iter().find(|(k, _)| *k == key).map(|(_, v)| *v) {
            None => Ok(Vec::new()),
            Some(slice) => json::scan_edge_pairs(slice)
                .map(|(pairs, _)| pairs)
                .map_err(|e| invalid(key, format!("malformed edit list: {e}"))),
        }
    };
    Ok((list("inserts")?, list("deletes")?))
}

/// Feeds an instance's structural content into a hasher: a kind/shape
/// tag word followed by the packed edge list. Shared by
/// [`request_fingerprint`] (journal payload interning) and
/// [`instance_fingerprint`] (instance handles), which differ only in
/// their domain tags.
fn hash_instance(h: &mut crate::journal::PayloadHasher, instance: &Instance) {
    // an edge fits one word in any graph that fits in memory; the
    // packing cannot alias across edges because positions line up
    let mut edge = |(u, v): (usize, usize)| {
        debug_assert!(u >> 32 == 0 && v >> 32 == 0, "node id exceeds 32 bits");
        h.word(((u as u64) << 32) | (v as u64 & 0xFFFF_FFFF));
    };
    match instance {
        Instance::Bipartite(b) => {
            edge((b.left_count(), b.right_count()));
            b.edges().for_each(&mut edge);
        }
        Instance::Host(g) => {
            edge((1, g.node_count()));
            g.edges().for_each(&mut edge);
        }
        Instance::Multi(g) => {
            edge((2, g.node_count()));
            (0..g.edge_count())
                .map(|e| g.endpoints(e))
                .for_each(&mut edge);
        }
    }
}

/// 128-bit structural fingerprint of an instance's *content* — exactly
/// what [`render_request`] serializes as the `"instance"` object. Two
/// instances with equal fingerprints render byte-identical canonical
/// encodings; the hex rendering of this hash ([`render_handle`]) **is**
/// the wire-level instance handle, so re-uploading an instance is
/// idempotent by construction. Hashed in its own domain
/// ([`crate::journal::DOMAIN_INSTANCE`]) so handles can never alias
/// journal payload fingerprints.
pub fn instance_fingerprint(instance: &Instance) -> crate::journal::PayloadHash {
    use crate::journal;
    let mut h = journal::PayloadHasher::new(journal::DOMAIN_INSTANCE);
    hash_instance(&mut h, instance);
    h.finish()
}

/// Encodes an instance fingerprint as the 32-digit lowercase-hex wire
/// handle string. [`parse_handle`] inverts it exactly.
pub fn render_handle(hash: crate::journal::PayloadHash) -> String {
    use std::fmt::Write;
    let mut s = String::with_capacity(32);
    for b in hash {
        write!(s, "{b:02x}").expect("writing hex to a String cannot fail");
    }
    s
}

/// Decodes a wire handle back into the fingerprint it names. `None`
/// unless the string is exactly 32 lowercase hex digits.
pub fn parse_handle(s: &str) -> Option<crate::journal::PayloadHash> {
    let bytes = s.as_bytes();
    if bytes.len() != 32 {
        return None;
    }
    let nib = |b: u8| match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        _ => None,
    };
    let mut hash = [0u8; 16];
    for (i, pair) in bytes.chunks_exact(2).enumerate() {
        hash[i] = nib(pair[0])? * 16 + nib(pair[1])?;
    }
    Some(hash)
}

/// 128-bit structural fingerprint of a request's *content* — exactly
/// the fields [`render_request`] serializes, minus the envelope (id,
/// priority, idempotency key). Two requests with equal fingerprints
/// render byte-identical canonical payloads, which is what lets the
/// write-ahead journal intern one payload blob for many admissions
/// without paying for a JSON rendering per admission (see
/// [`crate::journal`]).
///
/// The hash is a fast non-cryptographic content address in its own
/// domain ([`crate::journal::DOMAIN_REQUEST`]); the journal trusts its
/// in-process writers, so the bar is accidental collisions, not
/// adversarial ones.
pub fn request_fingerprint(request: &Request) -> crate::journal::PayloadHash {
    use crate::journal;
    let mut h = journal::PayloadHasher::new(journal::DOMAIN_REQUEST);
    hash_instance(&mut h, request.instance());
    hash_policy(&mut h, request);
    h.finish()
}

/// 128-bit fingerprint of a request's *policy* — everything
/// [`request_fingerprint`] hashes except the instance. Two requests with
/// equal policy fingerprints solve identically on any given instance,
/// which is what keys the server's held-solution cache: `(instance
/// fingerprint, policy fingerprint)` identifies "the same solve" across
/// mutations that move the instance to a new content hash.
pub fn policy_fingerprint(request: &Request) -> crate::journal::PayloadHash {
    use crate::journal;
    let mut h = journal::PayloadHasher::new(journal::DOMAIN_REQUEST);
    // a fixed tag word in place of the instance keeps policy
    // fingerprints from aliasing full request fingerprints
    h.word(u64::MAX);
    hash_policy(&mut h, request);
    h.finish()
}

fn hash_policy(h: &mut crate::journal::PayloadHasher, request: &Request) {
    // every problem field the renderer serializes, with presence tags
    // for the optional ones; the variant name separates the variants
    let problem = request.problem();
    h.bytes(problem.name().as_bytes());
    let mut opt_word = |v: Option<u64>| match v {
        Some(v) => {
            h.word(1);
            h.word(v);
        }
        None => h.word(0),
    };
    match *problem {
        Problem::WeakSplitting { thm12_constant } => opt_word(Some(thm12_constant.to_bits())),
        Problem::WeakMulticolor | Problem::SinklessOrientation => {}
        Problem::MulticolorSplitting { colors, lambda } => {
            opt_word(Some(u64::from(colors)));
            opt_word(Some(lambda.to_bits()));
        }
        Problem::UniformSplitting { eps, min_degree } => {
            opt_word(eps.map(f64::to_bits));
            opt_word(min_degree.map(|d| d as u64));
        }
        Problem::DegreeSplitting { eps, engine } => {
            opt_word(Some(eps.to_bits()));
            opt_word(Some(engine as u64));
        }
        Problem::DeltaColoring {
            base_degree,
            max_eps,
        } => {
            opt_word(base_degree.map(|b| b as u64));
            opt_word(max_eps.map(f64::to_bits));
        }
        Problem::EdgeColoring {
            base_degree,
            engine,
        } => {
            opt_word(base_degree.map(|b| b as u64));
            opt_word(Some(engine as u64));
        }
        Problem::Mis { base_degree } => opt_word(base_degree.map(|b| b as u64)),
    }
    h.bytes(request.determinism().name().as_bytes());
    h.word(request.master_seed());
    match request.pipeline_override() {
        Some(p) => h.bytes(p.name().as_bytes()),
        None => h.word(0),
    }
    let budget = request.budget();
    let mut opt_word = |v: Option<u64>| match v {
        Some(v) => {
            h.word(1);
            h.word(v);
        }
        None => h.word(0),
    };
    opt_word(budget.max_rounds.map(f64::to_bits));
    opt_word(budget.attempts.map(|a| a as u64));
    opt_word(budget.deadline_ms);
}

/// Renders a `ping` frame.
pub fn render_ping(id: &str) -> String {
    let mut obj = JsonObject::new();
    obj.uint("v", PROTOCOL_VERSION).string("type", "ping");
    if !id.is_empty() {
        obj.string("id", id);
    }
    obj.finish()
}

/// Renders a `shutdown` frame.
pub fn render_shutdown() -> String {
    let mut obj = JsonObject::new();
    obj.uint("v", PROTOCOL_VERSION).string("type", "shutdown");
    obj.finish()
}

// -------------------------------------------------------- reply assembly

/// Per-request service timings attached to reply frames (omitted when the
/// server runs with timings disabled, e.g. for byte-reproducible streams).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timing {
    /// Nanoseconds between admission and a worker picking the job up.
    pub queued_ns: u64,
    /// Nanoseconds the worker spent parsing + solving + rendering.
    pub solve_ns: u64,
}

fn reply_frame(
    frame_type: &str,
    id: &str,
    seq: u64,
    timing: Option<Timing>,
    replayed: bool,
    payload_key: &str,
    payload: &str,
) -> String {
    let mut obj = JsonObject::new();
    obj.uint("v", PROTOCOL_VERSION)
        .string("type", frame_type)
        .string("id", id)
        .uint("seq", seq);
    if let Some(t) = timing {
        obj.uint("queued_ns", t.queued_ns)
            .uint("solve_ns", t.solve_ns);
    }
    if replayed {
        obj.bool("replayed", true);
    }
    // the payload is always the LAST field so tests and clients can
    // extract it byte-exactly with `embedded_payload`
    obj.raw(payload_key, payload);
    obj.finish()
}

/// Assembles a `solution` reply frame around a rendered
/// [`Solution::to_json_line`](splitting_api::Solution::to_json_line)
/// payload (embedded verbatim).
pub fn solution_frame(id: &str, seq: u64, timing: Option<Timing>, payload: &str) -> String {
    reply_frame("solution", id, seq, timing, false, "solution", payload)
}

/// Assembles an `error` reply frame around a rendered
/// [`ApiError::to_json_line`] payload (embedded verbatim).
pub fn error_frame(id: &str, seq: u64, timing: Option<Timing>, payload: &str) -> String {
    reply_frame("error", id, seq, timing, false, "error", payload)
}

/// Assembles a reply frame served from the idempotency cache: same
/// shape as [`solution_frame`]/[`error_frame`] (the cached payload is
/// embedded byte-for-byte, still the last field) plus a
/// `"replayed":true` marker before the payload. Timings are omitted —
/// nothing was queued or solved.
pub fn replayed_frame(solution: bool, id: &str, seq: u64, payload: &str) -> String {
    let key = if solution { "solution" } else { "error" };
    reply_frame(key, id, seq, None, true, key, payload)
}

/// Assembles a `mutated` reply frame served from the idempotency cache:
/// same shape as [`mutated_frame`] plus the `"replayed":true` marker
/// before the payload. Nothing was re-patched — the cached payload
/// (including the moved handle) is embedded byte-for-byte.
pub fn replayed_mutated_frame(id: &str, seq: u64, payload: &str) -> String {
    reply_frame("mutated", id, seq, None, true, "mutated", payload)
}

/// Renders the payload of an `uploaded` reply: the handle, the interned
/// instance's shape (so the client can sanity-check what the server
/// holds), and the table size after interning.
pub fn uploaded_payload(handle: &str, instance: &Instance, held: usize) -> String {
    let mut obj = JsonObject::new();
    obj.string("event", "uploaded").string("handle", handle);
    match instance {
        Instance::Bipartite(b) => {
            obj.string("kind", "bipartite")
                .uint("left", b.left_count() as u64)
                .uint("right", b.right_count() as u64)
                .uint("edges", b.edges().count() as u64);
        }
        Instance::Host(g) => {
            obj.string("kind", "host")
                .uint("nodes", g.node_count() as u64)
                .uint("edges", g.edge_count() as u64);
        }
        Instance::Multi(g) => {
            obj.string("kind", "multigraph")
                .uint("nodes", g.node_count() as u64)
                .uint("edges", g.edge_count() as u64);
        }
    }
    obj.uint("held", held as u64);
    obj.finish()
}

/// Renders the payload of a `released` reply: the dropped handle and
/// the table size after the drop.
pub fn released_payload(handle: &str, held: usize) -> String {
    let mut obj = JsonObject::new();
    obj.string("event", "released")
        .string("handle", handle)
        .uint("held", held as u64);
    obj.finish()
}

/// Renders the payload of a `mutated` reply: the patched handle moves
/// from `handle` to `new_handle` (handles are content hashes, so the
/// hash is re-derived after the patch), with the edit counts applied,
/// the patched instance's edge count, and the table size.
pub fn mutated_payload(
    handle: &str,
    new_handle: &str,
    inserted: usize,
    deleted: usize,
    edges: usize,
    held: usize,
) -> String {
    let mut obj = JsonObject::new();
    obj.string("event", "mutated")
        .string("handle", handle)
        .string("new_handle", new_handle)
        .uint("inserted", inserted as u64)
        .uint("deleted", deleted as u64)
        .uint("edges", edges as u64)
        .uint("held", held as u64);
    obj.finish()
}

/// Assembles an `uploaded` reply frame around a rendered
/// [`uploaded_payload`] (embedded verbatim, last field like every reply
/// payload). Timings are omitted — interning happens at ingest, nothing
/// is queued or solved.
pub fn uploaded_frame(id: &str, seq: u64, payload: &str) -> String {
    reply_frame("uploaded", id, seq, None, false, "uploaded", payload)
}

/// Assembles a `released` reply frame around a rendered
/// [`released_payload`].
pub fn released_frame(id: &str, seq: u64, payload: &str) -> String {
    reply_frame("released", id, seq, None, false, "released", payload)
}

/// Assembles a `mutated` reply frame around a rendered
/// [`mutated_payload`] (embedded verbatim, last field like every reply
/// payload). Timings are omitted — patching happens at ingest, nothing
/// is queued or solved.
pub fn mutated_frame(id: &str, seq: u64, payload: &str) -> String {
    reply_frame("mutated", id, seq, None, false, "mutated", payload)
}

/// A point-in-time service snapshot, reported on heartbeat frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Requests solved (or typed-failed) and reported.
    pub served: u64,
    /// Requests refused admission.
    pub rejected: u64,
    /// Connections evicted for consuming replies too slowly.
    pub evicted: u64,
    /// Jobs waiting in the queue right now.
    pub queue_depth: usize,
    /// Deepest the queue has been since startup.
    pub queue_high_water: usize,
    /// Jobs being solved right now.
    pub inflight: usize,
    /// Persistent worker count.
    pub workers: usize,
    /// Configured queue capacity.
    pub queue_capacity: usize,
    /// Requests answered from the idempotency cache instead of solved.
    pub replayed: u64,
    /// Admissions appended to the journal since startup (0 when the
    /// server runs without `--journal`).
    pub journal_appended: u64,
    /// Current journal file size in bytes (0 without a journal).
    pub journal_bytes: u64,
    /// Incomplete jobs recovered from the journal at startup.
    pub journal_recovered: u64,
    /// Instance edge lists that fell off the zero-copy fast scanner
    /// onto the strict fallback parser. Canonical encodings never fall
    /// back, so a non-zero value means a client is sending exotic (but
    /// valid) edge spellings — the bench smoke job fails on it.
    pub parse_fallbacks: u64,
    /// Instances currently interned in the upload-handle table.
    pub handles_held: u64,
    /// Edge-delta batches applied to interned instances (`mutate`
    /// frames that succeeded).
    pub mutations_applied: u64,
    /// Held-solution updates served by the incremental repair path.
    pub repairs: u64,
    /// Held-solution updates that fell back to a from-scratch solve.
    pub full_resolves: u64,
    /// Mean fraction of constraints re-examined per repair, in
    /// permille (‰, 0–1000; integral so heartbeat frames stay
    /// byte-stable).
    pub refix_mean_permille: u64,
}

/// Assembles a `heartbeat` reply frame.
pub fn heartbeat_frame(id: &str, seq: u64, stats: StatsSnapshot) -> String {
    let mut obj = JsonObject::new();
    obj.uint("v", PROTOCOL_VERSION)
        .string("type", "heartbeat")
        .string("id", id)
        .uint("seq", seq)
        .uint("served", stats.served)
        .uint("rejected", stats.rejected)
        .uint("evicted", stats.evicted)
        .uint("queue_depth", stats.queue_depth as u64)
        .uint("queue_high_water", stats.queue_high_water as u64)
        .uint("inflight", stats.inflight as u64)
        .uint("workers", stats.workers as u64)
        .uint("queue_capacity", stats.queue_capacity as u64)
        .uint("replayed", stats.replayed)
        .uint("journal_appended", stats.journal_appended)
        .uint("journal_bytes", stats.journal_bytes)
        .uint("journal_recovered", stats.journal_recovered)
        .uint("parse_fallbacks", stats.parse_fallbacks)
        .uint("handles_held", stats.handles_held)
        .uint("mutations_applied", stats.mutations_applied)
        .uint("repairs", stats.repairs)
        .uint("full_resolves", stats.full_resolves)
        .uint("refix_mean_permille", stats.refix_mean_permille);
    obj.finish()
}

/// Renders the reserved wire-level panic report (see `docs/PROTOCOL.md`):
/// not part of the [`ApiError`] taxonomy because it certifies a server
/// bug, not a request failure.
pub fn internal_panic_payload(detail: &str) -> String {
    let mut obj = JsonObject::new();
    obj.string("event", "error")
        .string("kind", "internal-panic")
        .string("detail", detail);
    obj.finish()
}

/// A reply frame split back into its parts — the client-side decoder.
#[derive(Debug, Clone, PartialEq)]
pub struct Reply<'a> {
    /// `"solution"`, `"error"`, or `"heartbeat"`.
    pub frame_type: String,
    /// The echoed request id.
    pub id: String,
    /// Per-connection reporting sequence number.
    pub seq: u64,
    /// Optional service timings (absent when the server disables them).
    pub timing: Option<Timing>,
    /// `true` when the frame was served from the idempotency cache
    /// instead of a fresh solve.
    pub replayed: bool,
    /// The **byte-exact slice** of the embedded `solution`/`error`
    /// object; `None` for heartbeats. This is how the conformance
    /// harness asserts that server output equals direct `Session::solve`
    /// rendering byte for byte.
    pub payload: Option<&'a str>,
}

/// Splits a reply frame into its envelope and embedded payload slice.
/// Returns `None` when `frame` is not a well-formed v1 reply frame.
pub fn split_reply(frame: &str) -> Option<Reply<'_>> {
    let fields = json::scan_top_level(frame).ok()?;
    let get = |key: &str| fields.iter().find(|(k, _)| *k == key).map(|(_, v)| *v);
    let v = json::parse(get("v")?).ok()?.as_number()?.as_u64()?;
    if v != PROTOCOL_VERSION {
        return None;
    }
    let frame_type = json::parse(get("type")?).ok()?.as_str()?.to_owned();
    let id = json::parse(get("id")?).ok()?.as_str()?.to_owned();
    let seq = json::parse(get("seq")?).ok()?.as_number()?.as_u64()?;
    let field_u64 =
        |key: &str| -> Option<u64> { json::parse(get(key)?).ok()?.as_number()?.as_u64() };
    let timing = match (field_u64("queued_ns"), field_u64("solve_ns")) {
        (Some(queued_ns), Some(solve_ns)) => Some(Timing {
            queued_ns,
            solve_ns,
        }),
        _ => None,
    };
    // heartbeats reuse `replayed` as a counter (total cache hits served),
    // so the boolean reading applies only to solution/error frames
    let replayed = frame_type != "heartbeat"
        && match get("replayed") {
            None => false,
            Some(raw) => json::parse(raw).ok()?.as_bool()?,
        };
    let payload = match frame_type.as_str() {
        "solution" => Some(get("solution")?),
        "error" => Some(get("error")?),
        "uploaded" => Some(get("uploaded")?),
        "released" => Some(get("released")?),
        "mutated" => Some(get("mutated")?),
        "heartbeat" => None,
        _ => return None,
    };
    Some(Reply {
        frame_type,
        id,
        seq,
        timing,
        replayed,
        payload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use splitgraph::generators;

    #[test]
    fn envelope_scan_classifies_frames() {
        let line = r#"{"v":1,"type":"request","id":"r1","priority":"high","problem":{"name":"mis"},"instance":{"kind":"host","nodes":1,"edges":[]}}"#;
        assert_eq!(
            scan_envelope(line).unwrap(),
            ClientFrame::Request(Envelope {
                id: "r1".into(),
                priority: Priority::High,
                deadline_ms: None,
                idempotency_key: None,
                handle: None,
            })
        );
        assert_eq!(
            scan_envelope(r#"{"v":1,"type":"ping"}"#).unwrap(),
            ClientFrame::Ping { id: String::new() }
        );
        assert_eq!(
            scan_envelope(r#"{"v":1,"type":"shutdown"}"#).unwrap(),
            ClientFrame::Shutdown
        );
    }

    #[test]
    fn envelope_scan_rejects_bad_frames() {
        for (line, field) in [
            ("not json", "frame"),
            ("[1,2]", "frame"),
            (r#"{"type":"request"}"#, "v"),
            (r#"{"v":2,"type":"request"}"#, "v"),
            (r#"{"v":1}"#, "type"),
            (r#"{"v":1,"type":"nope"}"#, "type"),
            (r#"{"v":1,"type":"request"}"#, "id"),
            (r#"{"v":1,"type":"request","id":""}"#, "id"),
            (r#"{"v":1,"type":"request","id":"x","bogus":1}"#, "frame"),
            (
                r#"{"v":1,"type":"request","id":"x","priority":"urgent"}"#,
                "priority",
            ),
            (r#"{"v":1,"type":"request","id":"x"}"#, "problem"),
            (
                r#"{"v":1,"type":"request","id":"x","deadline_ms":"soon"}"#,
                "deadline_ms",
            ),
            (
                r#"{"v":1,"type":"request","id":"x","deadline_ms":-5}"#,
                "deadline_ms",
            ),
            (
                r#"{"v":1,"type":"request","id":"x","idempotency_key":7}"#,
                "idempotency_key",
            ),
            (
                r#"{"v":1,"type":"request","id":"x","idempotency_key":""}"#,
                "idempotency_key",
            ),
            (r#"{"v":1,"type":"shutdown","id":"x"}"#, "frame"),
        ] {
            match scan_envelope(line) {
                Err(ApiError::InvalidRequest { field: f, .. }) => {
                    assert_eq!(f, field, "line {line}")
                }
                other => panic!("{line}: expected invalid-request on {field}, got {other:?}"),
            }
        }
    }

    fn roundtrip(request: Request) {
        let line = render_request("rt", Priority::Low, &request);
        let (envelope, parsed) = parse_request(&line).expect(&line);
        assert_eq!(envelope.id, "rt");
        assert_eq!(envelope.priority, Priority::Low);
        assert_eq!(&parsed, &request, "wire round-trip changed the request");
    }

    #[test]
    fn every_problem_variant_roundtrips() {
        let mut rng = StdRng::seed_from_u64(9);
        let b = generators::random_biregular(8, 8, 4, &mut rng).unwrap();
        let g = generators::cycle(6).unwrap();
        let m = MultiGraph::from_endpoints(3, vec![(0, 1), (0, 1), (1, 2)]);
        roundtrip(Request::new(Problem::weak_splitting(), b.clone()).seed(7));
        roundtrip(
            Request::new(
                Problem::WeakSplitting {
                    thm12_constant: 1.5,
                },
                b.clone(),
            )
            .deterministic()
            .force_pipeline(Pipeline::Theorem25)
            .max_rounds(1e6)
            .attempts(3)
            .deadline_ms(30_000),
        );
        roundtrip(Request::new(Problem::WeakMulticolor, b.clone()));
        roundtrip(Request::new(
            Problem::MulticolorSplitting {
                colors: 6,
                lambda: 0.6,
            },
            b.clone(),
        ));
        roundtrip(Request::new(
            Problem::UniformSplitting {
                eps: Some(0.25),
                min_degree: Some(4),
            },
            g.clone(),
        ));
        roundtrip(Request::new(
            Problem::UniformSplitting {
                eps: None,
                min_degree: None,
            },
            g.clone(),
        ));
        roundtrip(Request::new(
            Problem::DegreeSplitting {
                eps: 0.25,
                engine: Engine::Walk,
            },
            m.clone(),
        ));
        roundtrip(Request::new(Problem::SinklessOrientation, g.clone()));
        roundtrip(Request::new(
            Problem::DeltaColoring {
                base_degree: Some(8),
                max_eps: Some(0.2),
            },
            g.clone(),
        ));
        roundtrip(Request::new(
            Problem::EdgeColoring {
                base_degree: None,
                engine: EdgeSplitEngine::Walk,
            },
            g.clone(),
        ));
        roundtrip(Request::new(Problem::Mis { base_degree: None }, g).seed(u64::MAX));
    }

    // The contract `request_fingerprint` must keep for journal payload
    // interning: fingerprints agree exactly when the canonical
    // renderings agree. Every variant pair here differs in one field
    // the renderer serializes, so a fingerprint that skipped any field
    // would collide two distinct payloads and fail this test.
    #[test]
    fn fingerprint_equality_tracks_canonical_rendering() {
        let mut rng = StdRng::seed_from_u64(11);
        let b = generators::random_biregular(8, 8, 4, &mut rng).unwrap();
        let b2 = generators::random_biregular(8, 8, 4, &mut rng).unwrap();
        let g = generators::cycle(6).unwrap();
        let m = MultiGraph::from_endpoints(3, vec![(0, 1), (0, 1), (1, 2)]);
        let mis = |instance: Instance| Request::new(Problem::Mis { base_degree: None }, instance);
        let variants: Vec<Request> = vec![
            Request::new(Problem::weak_splitting(), b.clone()),
            Request::new(Problem::weak_splitting(), b2.clone()),
            Request::new(Problem::weak_splitting(), b.clone()).seed(7),
            Request::new(
                Problem::WeakSplitting {
                    thm12_constant: 1.5,
                },
                b.clone(),
            ),
            Request::new(Problem::WeakMulticolor, b.clone()),
            Request::new(
                Problem::MulticolorSplitting {
                    colors: 6,
                    lambda: 0.6,
                },
                b.clone(),
            ),
            Request::new(
                Problem::MulticolorSplitting {
                    colors: 7,
                    lambda: 0.6,
                },
                b.clone(),
            ),
            Request::new(
                Problem::UniformSplitting {
                    eps: None,
                    min_degree: None,
                },
                g.clone(),
            ),
            Request::new(
                Problem::UniformSplitting {
                    eps: Some(0.25),
                    min_degree: None,
                },
                g.clone(),
            ),
            Request::new(
                Problem::UniformSplitting {
                    eps: None,
                    min_degree: Some(4),
                },
                g.clone(),
            ),
            Request::new(
                Problem::DegreeSplitting {
                    eps: 0.25,
                    engine: Engine::Walk,
                },
                m.clone(),
            ),
            Request::new(
                Problem::DegreeSplitting {
                    eps: 0.25,
                    engine: Engine::EulerianOracle,
                },
                m.clone(),
            ),
            Request::new(
                Problem::EdgeColoring {
                    base_degree: Some(4),
                    engine: EdgeSplitEngine::Walk,
                },
                g.clone(),
            ),
            Request::new(
                Problem::EdgeColoring {
                    base_degree: Some(4),
                    engine: EdgeSplitEngine::Eulerian,
                },
                g.clone(),
            ),
            Request::new(
                Problem::DeltaColoring {
                    base_degree: None,
                    max_eps: Some(0.2),
                },
                g.clone(),
            ),
            mis(Instance::from(g.clone())),
            mis(Instance::from(g.clone())).deterministic(),
            mis(Instance::from(g.clone())).force_pipeline(Pipeline::Theorem25),
            mis(Instance::from(g.clone())).max_rounds(1e6),
            mis(Instance::from(g.clone())).attempts(3),
            mis(Instance::from(g.clone())).deadline_ms(30_000),
        ];
        for (i, a) in variants.iter().enumerate() {
            let line_a = render_request("interned", Priority::Normal, a);
            for (j, bq) in variants.iter().enumerate() {
                let line_b = render_request("interned", Priority::Normal, bq);
                assert_eq!(
                    request_fingerprint(a) == request_fingerprint(bq),
                    line_a == line_b,
                    "fingerprint/render disagreement between variants {i} and {j}"
                );
            }
        }
    }

    #[test]
    fn idempotency_keys_ride_the_envelope_not_the_request() {
        let g = generators::cycle(6).unwrap();
        let request = Request::new(Problem::Mis { base_degree: None }, g).seed(3);
        let keyed = render_request_with_key("k1", Priority::Normal, Some("retry-abc"), &request);
        assert!(
            keyed.contains(r#""idempotency_key":"retry-abc""#),
            "{keyed}"
        );
        let (envelope, parsed) = parse_request(&keyed).unwrap();
        assert_eq!(envelope.idempotency_key.as_deref(), Some("retry-abc"));
        // the key is transport metadata: the solved Request is identical
        // to the keyless rendering's, so the solve (and its bytes)
        // cannot depend on it
        let plain = render_request("k1", Priority::Normal, &request);
        let (plain_env, plain_parsed) = parse_request(&plain).unwrap();
        assert_eq!(plain_env.idempotency_key, None);
        assert_eq!(parsed, plain_parsed);
    }

    #[test]
    fn mutate_frames_carry_an_optional_idempotency_key() {
        let handle = "0123456789abcdef0123456789abcdef";
        let keyed = render_mutate_with_key("m1", handle, Some("retry-m"), &[(0, 1)], &[]);
        assert!(keyed.contains(r#""idempotency_key":"retry-m""#), "{keyed}");
        match scan_envelope(&keyed).unwrap() {
            ClientFrame::Mutate {
                id,
                handle: h,
                idempotency_key,
            } => {
                assert_eq!(id, "m1");
                assert_eq!(h, handle);
                assert_eq!(idempotency_key.as_deref(), Some("retry-m"));
            }
            other => panic!("expected a mutate frame, got {other:?}"),
        }
        // the keyless renderings are byte-identical (doc-sync transcripts
        // rely on this), and scan to a None key
        let plain = render_mutate("m1", handle, &[(0, 1)], &[]);
        assert_eq!(
            plain,
            render_mutate_with_key("m1", handle, None, &[(0, 1)], &[])
        );
        match scan_envelope(&plain).unwrap() {
            ClientFrame::Mutate {
                idempotency_key, ..
            } => assert_eq!(idempotency_key, None),
            other => panic!("expected a mutate frame, got {other:?}"),
        }
        // malformed keys are typed errors, same rules as request keys
        let empty = format!(
            r#"{{"v":1,"type":"mutate","id":"m","handle":"{handle}","idempotency_key":"","inserts":[[0,1]]}}"#
        );
        assert_eq!(scan_envelope(&empty).unwrap_err().kind(), "invalid-request");
        let non_string = format!(
            r#"{{"v":1,"type":"mutate","id":"m","handle":"{handle}","idempotency_key":7,"inserts":[[0,1]]}}"#
        );
        assert_eq!(
            scan_envelope(&non_string).unwrap_err().kind(),
            "invalid-request"
        );
    }

    #[test]
    fn envelope_scan_surfaces_the_deadline_budget() {
        let line = r#"{"v":1,"type":"request","id":"d1","deadline_ms":250,"problem":{"name":"mis"},"instance":{"kind":"host","nodes":1,"edges":[]}}"#;
        match scan_envelope(line).unwrap() {
            ClientFrame::Request(envelope) => assert_eq!(envelope.deadline_ms, Some(250)),
            other => panic!("expected a request frame, got {other:?}"),
        }
        let (_, request) = parse_request(line).unwrap();
        assert_eq!(request.budget().deadline_ms, Some(250));
    }

    #[test]
    fn unknown_problem_and_instance_fields_are_typed_errors() {
        let bad_problem = r#"{"v":1,"type":"request","id":"x","problem":{"name":"mis","basedegree":4},"instance":{"kind":"host","nodes":1,"edges":[]}}"#;
        assert_eq!(
            parse_request(bad_problem).unwrap_err().kind(),
            "invalid-request"
        );
        let bad_instance = r#"{"v":1,"type":"request","id":"x","problem":{"name":"mis"},"instance":{"kind":"host","nodes":1,"edges":[],"n":1}}"#;
        assert_eq!(
            parse_request(bad_instance).unwrap_err().kind(),
            "invalid-request"
        );
        let bad_edge = r#"{"v":1,"type":"request","id":"x","problem":{"name":"mis"},"instance":{"kind":"multigraph","nodes":2,"edges":[[0,5]]}}"#;
        let err = parse_request(bad_edge).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn reply_frames_embed_payload_last() {
        let frame = solution_frame("r9", 4, None, r#"{"event":"solution","x":1}"#);
        assert_eq!(
            frame,
            r#"{"v":1,"type":"solution","id":"r9","seq":4,"solution":{"event":"solution","x":1}}"#
        );
        let timed = error_frame(
            "r9",
            5,
            Some(Timing {
                queued_ns: 10,
                solve_ns: 20,
            }),
            r#"{"event":"error"}"#,
        );
        assert_eq!(
            timed,
            r#"{"v":1,"type":"error","id":"r9","seq":5,"queued_ns":10,"solve_ns":20,"error":{"event":"error"}}"#
        );
    }

    #[test]
    fn replayed_frames_keep_the_payload_last_and_flag_before_it() {
        let payload = r#"{"event":"solution","x":1}"#;
        let frame = replayed_frame(true, "r9", 4, payload);
        assert_eq!(
            frame,
            r#"{"v":1,"type":"solution","id":"r9","seq":4,"replayed":true,"solution":{"event":"solution","x":1}}"#
        );
        let reply = split_reply(&frame).unwrap();
        assert!(reply.replayed);
        assert_eq!(reply.payload, Some(payload));
        // fresh frames parse as not-replayed
        assert!(
            !split_reply(&solution_frame("r9", 4, None, payload))
                .unwrap()
                .replayed
        );
    }

    #[test]
    fn split_reply_recovers_envelope_and_exact_payload() {
        let payload = r#"{"event":"solution","rounds":0}"#;
        let frame = solution_frame(
            "abc",
            17,
            Some(Timing {
                queued_ns: 3,
                solve_ns: 9,
            }),
            payload,
        );
        let reply = split_reply(&frame).unwrap();
        assert_eq!(reply.frame_type, "solution");
        assert_eq!(reply.id, "abc");
        assert_eq!(reply.seq, 17);
        assert_eq!(
            reply.timing,
            Some(Timing {
                queued_ns: 3,
                solve_ns: 9
            })
        );
        assert_eq!(reply.payload, Some(payload));

        let hb = heartbeat_frame("", 0, StatsSnapshot::default());
        let reply = split_reply(&hb).unwrap();
        assert_eq!(reply.frame_type, "heartbeat");
        assert_eq!(reply.payload, None);

        assert!(split_reply("not json").is_none());
        assert!(
            split_reply(r#"{"v":2,"type":"solution","id":"x","seq":0,"solution":{}}"#).is_none()
        );
    }

    #[test]
    fn handles_roundtrip_through_render_and_parse() {
        let g = generators::cycle(6).unwrap();
        let hash = instance_fingerprint(&Instance::from(g));
        let handle = render_handle(hash);
        assert_eq!(handle.len(), 32);
        assert!(handle
            .bytes()
            .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase()));
        assert_eq!(parse_handle(&handle), Some(hash));
        // rejects: wrong length, uppercase, non-hex
        assert_eq!(parse_handle(&handle[1..]), None);
        assert_eq!(parse_handle(&handle.to_uppercase()), None);
        assert_eq!(parse_handle(&format!("{}g", &handle[..31])), None);
    }

    #[test]
    fn instance_fingerprints_separate_structure_and_domain() {
        let g = generators::cycle(6).unwrap();
        let g2 = generators::cycle(7).unwrap();
        let a = instance_fingerprint(&Instance::from(g.clone()));
        assert_eq!(a, instance_fingerprint(&Instance::from(g.clone())));
        assert_ne!(a, instance_fingerprint(&Instance::from(g2)));
        // the instance domain must not collide with the request domain
        // over the same underlying graph content
        let request = Request::new(Problem::Mis { base_degree: None }, g);
        assert_ne!(a, request_fingerprint(&request));
    }

    #[test]
    fn handle_requests_scan_and_render_consistently() {
        let g = generators::cycle(6).unwrap();
        let request = Request::new(Problem::Mis { base_degree: None }, g).seed(3);
        let handle = render_handle(instance_fingerprint(request.instance()));
        let line = render_request_with_handle("h1", Priority::Normal, &handle, &request);
        match scan_envelope(&line).unwrap() {
            ClientFrame::Request(envelope) => {
                assert_eq!(envelope.id, "h1");
                assert_eq!(envelope.handle.as_deref(), Some(handle.as_str()));
            }
            other => panic!("expected a request frame, got {other:?}"),
        }
        // the inline-only parser refuses handle frames with a typed error
        let err = parse_request(&line).unwrap_err();
        assert_eq!(err.kind(), "invalid-request");
        assert!(err.to_string().contains("handle"), "{err}");
        // the resolved-instance parser reconstructs the same request
        let shared = std::sync::Arc::new(request.instance().clone());
        let (envelope, parsed) = parse_request_with_instance(&line, shared).unwrap();
        assert_eq!(envelope.id, "h1");
        assert_eq!(parsed, request);
        // and refuses inline frames, pointing callers at parse_request
        let inline = render_request("h1", Priority::Normal, &request);
        let shared = std::sync::Arc::new(request.instance().clone());
        let err = parse_request_with_instance(&inline, shared).unwrap_err();
        assert!(err.to_string().contains("inline"), "{err}");
    }

    #[test]
    fn upload_and_release_frames_classify_and_reject() {
        let g = generators::cycle(6).unwrap();
        let instance = Instance::from(g);
        let upload = render_upload("u1", &instance);
        assert_eq!(
            scan_envelope(&upload).unwrap(),
            ClientFrame::Upload { id: "u1".into() }
        );
        let handle = render_handle(instance_fingerprint(&instance));
        let release = render_release("u2", &handle);
        assert_eq!(
            scan_envelope(&release).unwrap(),
            ClientFrame::Release {
                id: "u2".into(),
                handle: handle.clone(),
            }
        );
        for (line, field) in [
            // a request may not carry both an inline instance and a handle
            (
                format!(
                    r#"{{"v":1,"type":"request","id":"x","problem":{{"name":"mis"}},"handle":"{handle}","instance":{{"kind":"host","nodes":1,"edges":[]}}}}"#
                ),
                "instance",
            ),
            // ... and must carry at least one of them
            (
                r#"{"v":1,"type":"request","id":"x","problem":{"name":"mis"}}"#.to_owned(),
                "instance",
            ),
            // malformed handle strings are typed errors, not lookups
            (
                r#"{"v":1,"type":"request","id":"x","problem":{"name":"mis"},"handle":"nope"}"#
                    .to_owned(),
                "handle",
            ),
            (r#"{"v":1,"type":"upload","id":"x"}"#.to_owned(), "instance"),
            (r#"{"v":1,"type":"release","id":"x"}"#.to_owned(), "handle"),
            (
                r#"{"v":1,"type":"release","id":"x","handle":"XYZ"}"#.to_owned(),
                "handle",
            ),
            (
                format!(r#"{{"v":1,"type":"upload","id":"x","handle":"{handle}"}}"#),
                "frame",
            ),
        ] {
            match scan_envelope(&line) {
                Err(ApiError::InvalidRequest { field: f, .. }) => {
                    assert_eq!(f, field, "line {line}")
                }
                other => panic!("{line}: expected invalid-request on {field}, got {other:?}"),
            }
        }
    }

    #[test]
    fn uploaded_and_released_frames_keep_the_payload_last() {
        let g = generators::cycle(6).unwrap();
        let instance = Instance::from(g);
        let handle = render_handle(instance_fingerprint(&instance));
        let payload = uploaded_payload(&handle, &instance, 1);
        assert!(
            payload.starts_with(r#"{"event":"uploaded","handle":""#),
            "{payload}"
        );
        assert!(payload.ends_with(r#","held":1}"#), "{payload}");
        let frame = uploaded_frame("u1", 3, &payload);
        assert!(
            frame.ends_with(&format!(r#","uploaded":{payload}}}"#)),
            "{frame}"
        );
        let reply = split_reply(&frame).unwrap();
        assert_eq!(reply.frame_type, "uploaded");
        assert_eq!(reply.id, "u1");
        assert_eq!(reply.seq, 3);
        assert_eq!(reply.payload, Some(payload.as_str()));

        let payload = released_payload(&handle, 0);
        assert_eq!(
            payload,
            format!(r#"{{"event":"released","handle":"{handle}","held":0}}"#)
        );
        let frame = released_frame("u2", 4, &payload);
        let reply = split_reply(&frame).unwrap();
        assert_eq!(reply.frame_type, "released");
        assert_eq!(reply.payload, Some(payload.as_str()));
    }

    // Satellite bugfix pin: edge errors deep inside an instance object
    // must report offsets relative to the whole instance text, not the
    // inner edges slice the parser happens to re-scan.
    #[test]
    fn edge_errors_report_offsets_into_the_instance_text() {
        let raw = r#"{"kind":"host","nodes":4,"edges":[[0,1],[1,x]]}"#;
        let err = parse_instance_traced(raw).unwrap_err();
        let expected = raw.find('x').unwrap();
        assert!(
            err.to_string().contains(&format!("at byte {expected}")),
            "expected offset {expected} in: {err}"
        );
        // canonical encodings ride the fast scanner; exotic-but-valid
        // ones fall back but still parse
        let (_, fast) =
            parse_instance_traced(r#"{"kind":"host","nodes":4,"edges":[[0,1],[1,2]]}"#).unwrap();
        assert!(fast);
        let (_, slow) =
            parse_instance_traced(r#"{"kind":"host","nodes":4,"edges":[[0,1],[1,2.0]]}"#).unwrap();
        assert!(!slow);
    }

    #[test]
    fn prescanned_requests_parse_identically_without_rescanning() {
        let mut rng = StdRng::seed_from_u64(41);
        let b = generators::random_biregular(8, 8, 4, &mut rng).unwrap();
        let request = Request::new(Problem::weak_splitting(), b).seed(9);
        let line = render_request("pre", Priority::High, &request);
        let (frame, prescan) = scan_envelope_prescanned(&line).unwrap();
        assert_eq!(frame, scan_envelope(&line).unwrap());
        let prescan = prescan.expect("canonical inline request must prescan");
        // the job stores a copy of the line; ranges must survive it
        let copied = line.clone();
        let (env_pre, req_pre, fast_pre) = parse_request_prescanned(&copied, prescan).unwrap();
        let (env_full, req_full, fast_full) = parse_request_traced(&line).unwrap();
        assert_eq!(env_pre, env_full);
        assert!(fast_pre && fast_full);
        assert_eq!(
            request_fingerprint(&req_pre),
            request_fingerprint(&req_full)
        );

        // exotic edge spellings, handle-form requests, and non-request
        // frames never carry a prescan — those paths re-parse as before
        let exotic = r#"{"v":1,"type":"request","id":"x","problem":{"name":"weak_splitting"},"instance":{"kind":"host","nodes":4,"edges":[[0,1],[1,2.0]]}}"#;
        let (_, none) = scan_envelope_prescanned(exotic).unwrap();
        assert!(none.is_none(), "exotic spelling must not prescan");
        let (instance, _) =
            parse_instance_traced(r#"{"kind":"host","nodes":2,"edges":[[0,1]]}"#).unwrap();
        let handle = render_handle(instance_fingerprint(&instance));
        let with_handle = render_request_with_handle("pre", Priority::Normal, &handle, &request);
        let (_, none) = scan_envelope_prescanned(&with_handle).unwrap();
        assert!(none.is_none(), "handle-form requests must not prescan");
        let (_, none) = scan_envelope_prescanned(r#"{"v":1,"type":"ping","id":"p"}"#).unwrap();
        assert!(none.is_none(), "pings must not prescan");
    }
}
