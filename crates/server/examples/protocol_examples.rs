//! Regenerates the worked request/response examples embedded in
//! `docs/PROTOCOL.md`.
//!
//! Every example in the spec is real output of this build — the
//! doc-sync test (`crates/server/tests/protocol_doc.rs`) replays each
//! request through a timings-disabled server and asserts the committed
//! response byte for byte. After changing the wire format, run
//!
//! ```text
//! cargo run -p splitting-server --example protocol_examples
//! ```
//!
//! and paste the emitted blocks over the marked sections of the spec.

use splitgraph::{generators, MultiGraph};
use splitting_api::{Problem, Request};
use splitting_server::{transport, wire, ChaosConfig, Submitted};
use splitting_server::{Priority, Server, ServerConfig};

/// The chaos schedule behind the survival transcript in
/// `docs/PROTOCOL.md` § Robustness. The doc-sync test replays exactly
/// this configuration, so keep it in lockstep with
/// `crates/server/tests/protocol_doc.rs`.
pub fn transcript_chaos_config() -> ChaosConfig {
    ChaosConfig {
        seed: 51,
        worker_panic: 0.2,
        worker_stall: 0.0,
        stall_ms: 1,
        torn_frame: 0.1,
        drop_connection: 0.0,
        process_kill: 0.0,
    }
}

/// The request lines behind the survival transcript — six cheap MIS
/// requests, so the fault draws (keyed by sequence number) are the only
/// thing that varies between replies.
pub fn transcript_input() -> String {
    let cyc6 = generators::cycle(6).unwrap();
    let mut input = String::new();
    for i in 0..6 {
        let request = Request::new(
            Problem::Mis {
                base_degree: Some(8),
            },
            cyc6.clone(),
        );
        input.push_str(&wire::render_request(
            &format!("c{i}"),
            Priority::Normal,
            &request,
        ));
        input.push('\n');
    }
    input
}

fn main() {
    let server = Server::start(ServerConfig {
        record_timings: false,
        ..ServerConfig::default()
    });

    // 3 constraints of degree 12 over 36 variables of degree 1: the
    // δ ≥ 6r zero-round regime, so the weak-splitting examples solve
    let skewed = splitgraph::BipartiteGraph::from_edges_bulk(
        3,
        36,
        &(0..3)
            .flat_map(|c| (0..12).map(move |j| (c, 12 * c + j)))
            .collect::<Vec<_>>(),
    )
    .unwrap();
    let k66 = generators::complete_bipartite(6, 6);
    let host6 = generators::complete(6);
    let host16 = generators::complete(16);
    let cyc6 = generators::cycle(6).unwrap();
    let multi = MultiGraph::from_endpoints(
        4,
        vec![
            (0, 1),
            (0, 1),
            (1, 2),
            (2, 3),
            (2, 3),
            (3, 0),
            (1, 3),
            (0, 2),
        ],
    );

    let examples: Vec<(&str, String, Request)> = vec![
        (
            "weak-splitting",
            "weak".into(),
            Request::new(Problem::weak_splitting(), skewed.clone()).seed(7),
        ),
        (
            "weak-multicolor",
            "weak-mc".into(),
            Request::new(
                Problem::WeakMulticolor,
                generators::complete_bipartite(3, 64),
            )
            .deterministic(),
        ),
        (
            "multicolor-splitting",
            "mc".into(),
            Request::new(
                Problem::MulticolorSplitting {
                    colors: 6,
                    lambda: 0.6,
                },
                k66.clone(),
            )
            .deterministic(),
        ),
        (
            "uniform-splitting",
            "uniform".into(),
            Request::new(
                Problem::UniformSplitting {
                    eps: Some(splitting_reductions::feasible_eps(16, 15)),
                    min_degree: Some(15),
                },
                host16.clone(),
            )
            .deterministic(),
        ),
        (
            "degree-splitting",
            "degree".into(),
            Request::new(
                Problem::DegreeSplitting {
                    eps: 0.25,
                    engine: degree_split::Engine::EulerianOracle,
                },
                multi,
            )
            .deterministic(),
        ),
        (
            "sinkless-orientation",
            "sinkless".into(),
            Request::new(Problem::SinklessOrientation, host6.clone()),
        ),
        (
            "delta-coloring",
            "delta".into(),
            Request::new(
                Problem::DeltaColoring {
                    base_degree: Some(12),
                    max_eps: Some(0.35),
                },
                host6.clone(),
            )
            .deterministic(),
        ),
        (
            "edge-coloring",
            "edge".into(),
            Request::new(
                Problem::EdgeColoring {
                    base_degree: Some(8),
                    engine: splitting_reductions::EdgeSplitEngine::Eulerian,
                },
                cyc6.clone(),
            ),
        ),
        (
            "mis",
            "mis-1".into(),
            Request::new(
                Problem::Mis {
                    base_degree: Some(8),
                },
                cyc6.clone(),
            ),
        ),
        (
            // a zero-millisecond budget is already expired when a worker
            // picks the job up, so the reply is the typed
            // `deadline-exceeded` error frame — deterministically
            "deadline-exceeded",
            "dl-1".into(),
            Request::new(
                Problem::Mis {
                    base_degree: Some(8),
                },
                cyc6,
            )
            .deadline_ms(0),
        ),
    ];

    // one request in flight at a time — lockstep keeps the idempotency
    // pair below deterministic (the retry is only submitted once the
    // first reply exists, so it always hits the cache), and the frames
    // are byte-identical to what a streamed transport would carry
    let (mut tx, mut rx) = server.connect().split();
    let print_pair = |name: &str, line: &str, reply: &str| {
        println!("### `{name}`\n");
        println!("<!-- doc-sync: request {name} -->");
        println!("```json\n{line}\n```\n");
        println!("<!-- doc-sync: response {name} -->");
        println!("```json\n{reply}\n```\n");
    };
    for (name, id, request) in &examples {
        let line = wire::render_request(id, Priority::Normal, request);
        assert_eq!(tx.submit_line(&line), Submitted::Queued, "{name}");
        let reply = rx.recv().expect("one reply per request");
        print_pair(name, &line, &reply);
    }

    // the duplicate-retry transcript behind § Durability and
    // idempotency: the same keyed request twice over one connection;
    // the retry is answered from the idempotency cache — same payload
    // bytes, its own seq, flagged `"replayed":true`, no fresh solve
    let keyed = wire::render_request_with_key(
        "idem-1",
        Priority::Normal,
        Some("retry-demo-1"),
        &Request::new(
            Problem::Mis {
                base_degree: Some(8),
            },
            generators::cycle(6).unwrap(),
        ),
    );
    for (name, want) in [
        ("idempotent-first", Submitted::Queued),
        ("idempotent-retry", Submitted::Replied),
    ] {
        assert_eq!(tx.submit_line(&keyed), want, "{name}");
        let reply = rx.recv().expect("one reply per submission");
        print_pair(name, &keyed, &reply);
    }

    // the instance-handle transcript behind § Instance handles: upload
    // the 6-cycle once, solve the held instance twice under different
    // seeds (no instance bytes on either request), then release it.
    // Handles are content hashes, so these bytes are reproducible on
    // any build.
    let held = splitting_api::Instance::Host(generators::cycle(6).unwrap());
    let handle = wire::render_handle(wire::instance_fingerprint(&held));
    let upload = wire::render_upload("up-1", &held);
    assert_eq!(tx.submit_line(&upload), Submitted::Replied, "upload");
    let reply = rx.recv().expect("uploaded frame");
    print_pair("upload-instance", &upload, &reply);
    for (name, id, seed) in [("handle-mis-1", "h-1", 5u64), ("handle-mis-2", "h-2", 6)] {
        let request = Request::new(
            Problem::Mis {
                base_degree: Some(8),
            },
            generators::cycle(6).unwrap(),
        )
        .seed(seed);
        let line = wire::render_request_with_handle(id, Priority::Normal, &handle, &request);
        assert_eq!(tx.submit_line(&line), Submitted::Queued, "{name}");
        let reply = rx.recv().expect("one reply per handle request");
        print_pair(name, &line, &reply);
    }
    let release = wire::render_release("rel-1", &handle);
    assert_eq!(tx.submit_line(&release), Submitted::Replied, "release");
    let reply = rx.recv().expect("released frame");
    print_pair("release-instance", &release, &reply);

    // the churn transcript behind § Mutating held instances: upload a
    // bipartite instance, solve it by handle, mutate it (one edge
    // moved between constraints), then solve the patched instance by
    // its re-derived handle — the second solve is answered by the
    // incremental repair path seeded from the held solution, visible in
    // its provenance route. 8 constraints of degree 8 over 64 variables
    // of degree 1: the δ ≥ 6r zero-round regime with one edge of margin
    // (the delete below leaves δ = 7 ≥ 6), and wide enough that a
    // one-edge move dirties exactly 2 of 8 constraints — at the repair
    // path's 25% refix threshold, not over it
    let churned = splitgraph::BipartiteGraph::from_edges_bulk(
        8,
        64,
        &(0..8)
            .flat_map(|c| (0..8).map(move |j| (c, 8 * c + j)))
            .collect::<Vec<_>>(),
    )
    .unwrap();
    let bip = splitting_api::Instance::Bipartite(churned.clone());
    let bip_handle = wire::render_handle(wire::instance_fingerprint(&bip));
    let upload = wire::render_upload("up-2", &bip);
    assert_eq!(tx.submit_line(&upload), Submitted::Replied, "upload");
    let reply = rx.recv().expect("uploaded frame");
    print_pair("upload-bipartite", &upload, &reply);
    let churn_request = Request::new(Problem::weak_splitting(), churned.clone()).seed(7);
    let line =
        wire::render_request_with_handle("w-1", Priority::Normal, &bip_handle, &churn_request);
    assert_eq!(tx.submit_line(&line), Submitted::Queued, "handle-weak-1");
    let reply = rx.recv().expect("one reply per handle request");
    print_pair("handle-weak-1", &line, &reply);
    let inserts = [(7usize, 0usize)];
    let deletes = [(0usize, 0usize)];
    let mutate = wire::render_mutate("mut-1", &bip_handle, &inserts, &deletes);
    assert_eq!(tx.submit_line(&mutate), Submitted::Replied, "mutate");
    let reply = rx.recv().expect("mutated frame");
    print_pair("mutate-instance", &mutate, &reply);
    // the new handle is the content hash of the patched instance; a
    // client can recompute it like this or read it off the `mutated`
    // reply's `new_handle` field
    let mut patched = churned.clone();
    splitgraph::delta::EdgeDelta::new(&patched, &inserts, &deletes)
        .unwrap()
        .apply(&mut patched)
        .unwrap();
    let new_handle = wire::render_handle(wire::instance_fingerprint(
        &splitting_api::Instance::Bipartite(patched),
    ));
    let line =
        wire::render_request_with_handle("w-2", Priority::Normal, &new_handle, &churn_request);
    assert_eq!(tx.submit_line(&line), Submitted::Queued, "handle-weak-2");
    let reply = rx.recv().expect("one reply per handle request");
    print_pair("handle-weak-2", &line, &reply);
    tx.finish();
    server.shutdown();

    // The chaos-survival transcript: the same fixed fault schedule every
    // time, so the surviving bytes below are reproducible on any build.
    let chaos_server = Server::start(ServerConfig {
        workers: 1,
        record_timings: false,
        chaos: Some(transcript_chaos_config()),
        ..ServerConfig::default()
    });
    let input = transcript_input();
    let mut out = Vec::new();
    let outcome = transport::serve_stream(&chaos_server, input.as_bytes(), &mut out);
    chaos_server.shutdown();
    println!("### chaos-survival transcript\n");
    println!("<!-- chaos-sync: input -->");
    println!("```json\n{}```\n", input);
    println!("<!-- chaos-sync: output -->");
    print!("```text\n{}", String::from_utf8_lossy(&out));
    if !out.ends_with(b"\n") {
        println!();
    }
    println!("```\n");
    match outcome {
        Ok(summary) => println!(
            "(stream completed: {} lines in, {} replies out)",
            summary.lines_in, summary.replies_out
        ),
        Err(e) => println!("(stream torn down by the injected fault: {e})"),
    }
}
