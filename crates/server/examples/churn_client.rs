//! Reference client for the churn lifecycle (docs/PROTOCOL.md
//! § Mutating held instances): upload a bipartite instance once, solve
//! it by handle, then stream edge-mutation batches — citing the
//! re-derived content handle from each `mutated` reply on the next
//! round — and let the server answer the post-mutation solves from its
//! incremental repair path.
//!
//! The client keeps a local mirror of the graph so it can verify the
//! server's handle arithmetic: after every `mutate`, the `new_handle`
//! on the reply must equal the content hash of the locally patched
//! mirror. The closing heartbeat shows the churn counters moving.
//!
//! ```text
//! cargo run -p splitting-server --example churn_client
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use splitgraph::delta::{random_delta, ChurnStyle};
use splitgraph::generators;
use splitting_api::{Instance, Problem, Request};
use splitting_server::{wire, Priority, Server, ServerConfig, Submitted};

/// Mutation rounds to stream.
const ROUNDS: usize = 5;

/// Extracts a `"key":N` integer field from a frame.
fn field_u64(frame: &str, key: &str) -> u64 {
    let rest = frame
        .split(&format!("\"{key}\":"))
        .nth(1)
        .unwrap_or_else(|| panic!("frame has no {key} field: {frame}"));
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().expect("integer field")
}

/// Extracts a `"key":"value"` string field from a frame.
fn field_str<'a>(frame: &'a str, key: &str) -> &'a str {
    let rest = frame
        .split(&format!("\"{key}\":\""))
        .nth(1)
        .unwrap_or_else(|| panic!("frame has no {key} field: {frame}"));
    rest.split('"').next().expect("terminated string field")
}

fn main() {
    let server = Server::start(ServerConfig {
        record_timings: false,
        ..ServerConfig::default()
    });
    let (mut tx, mut rx) = server.connect().split();

    // 300 constraints and variables of degree 24 over n = 600: the
    // deterministic δ ≥ 2·log n regime (threshold 19) with enough
    // margin that a handful of deletes cannot exit it
    let mut rng = StdRng::seed_from_u64(0x0C11E27);
    let mut mirror = generators::random_biregular(300, 300, 24, &mut rng).expect("feasible");
    // handle requests carry no instance bytes, so the request's graph
    // argument never reaches the wire — what matters is that every
    // solve reuses the same problem/determinism/seed: the held-solution
    // cache keys on the policy, and only a matching policy is answered
    // by incremental repair
    let policy = Request::new(
        Problem::weak_splitting(),
        splitgraph::BipartiteGraph::new(1, 1),
    )
    .deterministic()
    .seed(3);

    let upload = wire::render_upload("up-1", &Instance::Bipartite(mirror.clone()));
    assert_eq!(tx.submit_line(&upload), Submitted::Replied);
    let uploaded = rx.recv().expect("uploaded frame");
    let mut handle = field_str(&uploaded, "handle").to_owned();
    println!(
        "uploaded {} edges under handle {handle}",
        mirror.edge_count()
    );

    let line = wire::render_request_with_handle("solve-0", Priority::Normal, &handle, &policy);
    assert_eq!(tx.submit_line(&line), Submitted::Queued);
    let first = rx.recv().expect("first solution");
    println!("solve-0: route={}", field_str(&first, "route"));
    assert!(first.contains("\"type\":\"solution\""), "{first}");

    let mut repair_routes = 0usize;
    for round in 0..ROUNDS {
        // a seeded rewire batch against the mirror (2 edits: each dirty
        // variable drags its ~24 constraints into the refix halo, so a
        // small batch keeps the halo under the repair path's 25%
        // threshold); apply it locally first so the client can predict
        // the server's new handle
        let delta = random_delta(&mirror, ChurnStyle::Rewire, 2, &mut rng);
        delta.apply(&mut mirror).expect("mirror stays in sync");
        let expected = wire::render_handle(wire::instance_fingerprint(&Instance::Bipartite(
            mirror.clone(),
        )));
        let mutate = wire::render_mutate(
            &format!("mut-{round}"),
            &handle,
            delta.inserts(),
            delta.deletes(),
        );
        assert_eq!(tx.submit_line(&mutate), Submitted::Replied);
        let mutated = rx.recv().expect("mutated frame");
        assert!(mutated.contains("\"type\":\"mutated\""), "{mutated}");
        let new_handle = field_str(&mutated, "new_handle").to_owned();
        assert_eq!(
            new_handle, expected,
            "server and client agree on the patched content hash"
        );
        handle = new_handle;

        let id = format!("solve-{}", round + 1);
        let line = wire::render_request_with_handle(&id, Priority::Normal, &handle, &policy);
        assert_eq!(tx.submit_line(&line), Submitted::Queued);
        let solved = rx.recv().expect("post-mutation solution");
        assert!(solved.contains("\"type\":\"solution\""), "{solved}");
        let route = field_str(&solved, "route");
        println!(
            "{id}: {} inserts / {} deletes → handle {}… route={route}",
            delta.inserts().len(),
            delta.deletes().len(),
            &handle[..8],
        );
        if route == "weak-splitting/repair" {
            repair_routes += 1;
        }
    }

    // the heartbeat's churn counters summarize what just happened
    assert_eq!(
        tx.submit_line("{\"v\":1,\"type\":\"ping\",\"id\":\"hb\"}"),
        Submitted::Replied
    );
    let hb = rx.recv().expect("heartbeat frame");
    let (mutations, repairs, fulls) = (
        field_u64(&hb, "mutations_applied"),
        field_u64(&hb, "repairs"),
        field_u64(&hb, "full_resolves"),
    );
    println!(
        "heartbeat: mutations_applied={mutations} repairs={repairs} \
         full_resolves={fulls} refix_mean_permille={}",
        field_u64(&hb, "refix_mean_permille"),
    );
    assert_eq!(mutations, ROUNDS as u64, "every mutate frame applied");
    assert_eq!(
        repairs + fulls,
        ROUNDS as u64,
        "every post-mutation solve drained its pending delta"
    );
    assert_eq!(
        repair_routes, repairs as usize,
        "repair routes on the wire match the server's counter"
    );
    tx.finish();
    server.shutdown();
    println!("done: {repair_routes}/{ROUNDS} post-mutation solves served by incremental repair");
}
