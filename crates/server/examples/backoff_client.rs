//! Reference client for `overloaded` handling: exponential backoff with
//! seeded jitter, honouring the server's `retry_after_ms` hint.
//!
//! The protocol promises (docs/PROTOCOL.md § Admission control) that an
//! admission reject carries a machine-readable `retry_after_ms` field.
//! A well-behaved client sleeps at least that long and doubles its own
//! delay on every consecutive reject of the same request, with jitter
//! so a fleet of clients does not retry in lockstep. This example runs
//! the full loop against a deliberately tiny in-process server: a burst
//! of requests overflows the 2-slot queue, the rejects come back typed,
//! and every request eventually solves.
//!
//! The second act is the crash-retry loop (docs/PROTOCOL.md
//! § Durability and idempotency): the client attaches an
//! `idempotency_key`, "crashes" before recording the reply, reconnects,
//! and retries the identical line — the server answers from its reply
//! cache with the same payload bytes, flagged `"replayed":true`.
//!
//! ```text
//! cargo run -p splitting-server --example backoff_client
//! ```

use local_runtime::splitmix64;
use splitgraph::generators;
use splitting_api::{Problem, Request};
use splitting_server::{wire, Admission, Priority, Server, ServerConfig, Submitted};
use std::collections::HashMap;
use std::thread;
use std::time::Duration;

/// Base client-side delay; the effective wait is
/// `max(retry_after_ms hint, BASE_MS << attempt)` plus jitter.
const BASE_MS: u64 = 5;
/// Give up after this many consecutive rejects of one request.
const MAX_ATTEMPTS: u32 = 10;
/// Seed for the jitter draws — any fixed value keeps the run
/// reproducible; a real fleet would use a per-client seed.
const JITTER_SEED: u64 = 0xBAC0FF;

/// Extracts `"retry_after_ms":N` from an `overloaded` error payload.
fn retry_after_hint(payload: &str) -> Option<u64> {
    let rest = payload.split("\"retry_after_ms\":").nth(1)?;
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Deterministic jitter in `[0, cap_ms)` keyed by (request, attempt).
fn jitter_ms(job: u64, attempt: u32, cap_ms: u64) -> u64 {
    if cap_ms == 0 {
        return 0;
    }
    splitmix64(JITTER_SEED ^ splitmix64(job ^ u64::from(attempt))) % cap_ms
}

fn main() {
    // A server small enough that a burst must overflow: one worker,
    // two queue slots, reject-on-full with a 10 ms retry hint.
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_capacity: 2,
        admission: Admission::Reject,
        retry_after_ms: 10,
        record_timings: false,
        ..ServerConfig::default()
    });
    let (mut tx, mut rx) = server.connect().split();

    let cyc6 = generators::cycle(6).unwrap();
    let jobs: u64 = 12;
    let mut pending: Vec<u64> = (0..jobs).collect();
    let mut attempts: HashMap<u64, u32> = HashMap::new();
    let mut solved = 0u64;
    let mut rejects = 0u64;
    let mut wave = 0u32;

    while !pending.is_empty() {
        wave += 1;
        // submit the whole wave as a burst — this is what overflows the
        // queue and provokes typed `overloaded` rejects
        let wave_jobs = std::mem::take(&mut pending);
        for &job in &wave_jobs {
            let request = Request::new(
                Problem::Mis {
                    base_degree: Some(8),
                },
                cyc6.clone(),
            );
            let submitted = tx.submit_request(&format!("job-{job}"), Priority::Normal, request);
            assert!(
                matches!(submitted, Submitted::Queued | Submitted::Replied),
                "unexpected submit outcome: {submitted:?}"
            );
        }
        // exactly one reply frame per submission, in submission order
        let mut max_hint = 0u64;
        for &job in &wave_jobs {
            let frame = rx.recv().expect("one reply per request");
            let reply = wire::split_reply(&frame).expect("well-formed reply frame");
            assert_eq!(reply.id, format!("job-{job}"));
            match reply.frame_type.as_str() {
                "solution" => {
                    solved += 1;
                }
                "error" => {
                    let payload = reply.payload.expect("error frames carry a payload");
                    assert!(
                        payload.contains("\"kind\":\"overloaded\""),
                        "unexpected error: {payload}"
                    );
                    rejects += 1;
                    let attempt = attempts.entry(job).or_insert(0);
                    *attempt += 1;
                    assert!(
                        *attempt <= MAX_ATTEMPTS,
                        "job-{job} still rejected after {MAX_ATTEMPTS} attempts"
                    );
                    max_hint =
                        max_hint.max(retry_after_hint(payload).expect("overloaded carries a hint"));
                    pending.push(job);
                }
                other => panic!("unexpected frame type {other}"),
            }
        }
        if pending.is_empty() {
            break;
        }
        // exponential backoff from the worst attempt count in the wave,
        // floored by the server's hint, plus jitter to spread retries
        let worst = pending
            .iter()
            .map(|job| attempts.get(job).copied().unwrap_or(0))
            .max()
            .unwrap_or(0);
        let backoff = max_hint.max(BASE_MS << worst.min(10));
        let delay = backoff + jitter_ms(pending[0], worst, backoff / 2 + 1);
        println!(
            "wave {wave}: {} solved, {} to retry — sleeping {delay} ms \
             (hint {max_hint} ms, attempt {worst})",
            wave_jobs.len() - pending.len(),
            pending.len()
        );
        thread::sleep(Duration::from_millis(delay));
    }
    tx.finish();

    let stats = server.stats();
    println!(
        "done: {solved}/{jobs} solved over {wave} waves, {rejects} typed rejects \
         (server counted {} rejected)",
        stats.rejected
    );
    assert_eq!(solved, jobs, "every request eventually solves");
    assert_eq!(
        rejects, stats.rejected,
        "client saw every reject the server issued"
    );

    // ---- reconnect and retry with an idempotency key ----------------
    //
    // A client that crashes after the server has committed its reply
    // (but before durably recording it) must be able to retry without
    // the work running twice. The key makes the retry safe: the server
    // replays the cached reply frame with identical payload bytes.
    let keyed = wire::render_request_with_key(
        "keyed-1",
        Priority::Normal,
        Some("backoff-demo-key"),
        &Request::new(
            Problem::Mis {
                base_degree: Some(8),
            },
            cyc6.clone(),
        ),
    );
    let (mut tx, mut rx) = server.connect().split();
    assert_eq!(tx.submit_line(&keyed), Submitted::Queued);
    let first = rx.recv().expect("the keyed request solves");
    let first_payload = wire::split_reply(&first)
        .expect("well-formed reply frame")
        .payload
        .expect("solution frames carry a payload")
        .to_owned();
    // the "crash": the connection dies with the reply unrecorded
    tx.finish();
    drop(rx);

    // the restarted client reconnects and retries the identical line
    let (mut tx, mut rx) = server.connect().split();
    assert_eq!(
        tx.submit_line(&keyed),
        Submitted::Replied,
        "the retry is answered from the idempotency cache"
    );
    let retry = rx.recv().expect("one reply for the retry");
    let reply = wire::split_reply(&retry).expect("well-formed reply frame");
    assert!(reply.replayed, "the retry is flagged as a replay");
    assert_eq!(
        reply.payload.expect("replayed solutions carry a payload"),
        first_payload,
        "replayed payload is byte-identical to the original reply"
    );
    println!(
        "retry of keyed-1 replayed from cache ({} payload bytes, byte-identical)",
        first_payload.len()
    );
    tx.finish();
    server.shutdown();
}
