//! Luby's randomized maximal independent set [Luby '86] as a genuine
//! message-passing LOCAL program.
//!
//! MIS is the flagship symmetry-breaking problem in the splitting paper's
//! framing: a `poly log n` deterministic MIS is among the open problems
//! weak splitting is complete for, while this randomized algorithm ends in
//! `O(log n)` phases w.h.p. It serves as a measured-rounds baseline next to
//! the Section 4 heavy-node-elimination MIS.
//!
//! Each phase costs three rounds: active nodes exchange random priorities,
//! local maxima join the set and announce it, and their neighbors retire
//! (announcing that too, so the survivors shrink their active-neighbor
//! sets).

use local_runtime::{run_local, NodeContext, NodeProgram, NodeRngs, BROADCAST};
use rand::RngExt;
use splitgraph::Graph;

/// Outcome of a Luby MIS run.
#[derive(Debug, Clone)]
pub struct LubyOutcome {
    /// Set-membership indicator, by node.
    pub in_mis: Vec<bool>,
    /// Measured LOCAL rounds (3 per phase).
    pub rounds: usize,
    /// Phases executed (`rounds / 3`, rounded up).
    pub phases: usize,
    /// Messages delivered.
    pub messages: usize,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Msg {
    /// `(priority, id)` of an active node this phase.
    Priority(u64, u64),
    /// The sender joined the MIS.
    Joined,
    /// The sender retired (a neighbor joined).
    Retired,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Active,
    InMis,
    Out,
}

struct Luby {
    rngs: NodeRngs,
    state: State,
    /// ports of still-active neighbors
    active_ports: Vec<bool>,
    phase: u64,
    step: u8,
    /// best competing (priority, id) received this phase
    best_rival: Option<(u64, u64)>,
}

impl NodeProgram for Luby {
    type Msg = Msg;
    type Output = bool;

    fn init(&mut self, ctx: &NodeContext) -> Vec<(usize, Msg)> {
        self.active_ports = vec![true; ctx.degree];
        if ctx.degree == 0 {
            // isolated nodes join immediately
            self.state = State::InMis;
            return vec![];
        }
        let p: u64 = self.rngs.rng(ctx.node, self.phase).random();
        vec![(BROADCAST, Msg::Priority(p, ctx.id))]
    }

    fn round(&mut self, ctx: &NodeContext, inbox: &[(usize, Msg)]) -> Vec<(usize, Msg)> {
        self.step = (self.step + 1) % 3;
        match self.step {
            1 => {
                // received priorities; decide whether we are the local max
                self.best_rival = inbox
                    .iter()
                    .filter_map(|&(_, m)| match m {
                        Msg::Priority(p, id) => Some((p, id)),
                        _ => None,
                    })
                    .max();
                if self.state != State::Active {
                    return vec![];
                }
                let mine: u64 = self.rngs.rng(ctx.node, self.phase).random();
                if self.best_rival.is_none_or(|rival| (mine, ctx.id) > rival) {
                    self.state = State::InMis;
                    vec![(BROADCAST, Msg::Joined)]
                } else {
                    vec![]
                }
            }
            2 => {
                // joiners' neighbors retire
                for &(port, m) in inbox {
                    if m == Msg::Joined {
                        self.active_ports[port] = false;
                        if self.state == State::Active {
                            self.state = State::Out;
                        }
                    }
                }
                if self.state == State::Out && inbox.iter().any(|&(_, m)| m == Msg::Joined) {
                    vec![(BROADCAST, Msg::Retired)]
                } else {
                    vec![]
                }
            }
            _ => {
                // prune retired neighbors; next phase's priorities go out
                for &(port, m) in inbox {
                    if m == Msg::Retired {
                        self.active_ports[port] = false;
                    }
                }
                self.phase += 1;
                if self.state != State::Active {
                    return vec![];
                }
                if !self.active_ports.iter().any(|&a| a) {
                    // all neighbors decided: we can join unopposed
                    self.state = State::InMis;
                    return vec![(BROADCAST, Msg::Joined)];
                }
                let p: u64 = self.rngs.rng(ctx.node, self.phase).random();
                vec![(BROADCAST, Msg::Priority(p, ctx.id))]
            }
        }
    }

    fn is_done(&self) -> bool {
        self.state != State::Active
    }

    fn output(&self) -> bool {
        self.state == State::InMis
    }
}

/// Runs Luby's MIS on `g` with the given seed. Completes in `O(log n)`
/// phases w.h.p.; the returned indicator is always validated by the caller
/// (or see the tests) via [`splitgraph::checks::is_mis`].
///
/// # Examples
///
/// ```
/// use local_coloring::luby_mis;
/// use splitgraph::{checks, generators};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(3);
/// let g = generators::random_regular(100, 6, &mut rng)?;
/// let out = luby_mis(&g, 42);
/// assert!(checks::is_mis(&g, &out.in_mis));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn luby_mis(g: &Graph, seed: u64) -> LubyOutcome {
    let n = g.node_count();
    let ids: Vec<u64> = (0..n as u64).collect();
    let rngs = NodeRngs::new(seed);
    // O(log n) phases w.h.p.; the limit is far above that
    let max_rounds = 3 * (4 * (n.max(2) as f64).log2().ceil() as usize + 8);
    let run = run_local(g, &ids, max_rounds, |_| Luby {
        rngs,
        state: State::Active,
        active_ports: Vec::new(),
        phase: 0,
        step: 0,
        best_rival: None,
    });
    assert!(
        run.completed,
        "Luby must terminate within O(log n) phases w.h.p."
    );
    LubyOutcome {
        in_mis: run.outputs,
        rounds: run.rounds,
        phases: run.rounds.div_ceil(3),
        messages: run.messages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use splitgraph::checks::is_mis;
    use splitgraph::generators;

    #[test]
    fn valid_mis_on_random_regular_graphs() {
        let mut rng = StdRng::seed_from_u64(1);
        for d in [3usize, 8, 16] {
            let g = generators::random_regular(200, d, &mut rng).unwrap();
            let out = luby_mis(&g, d as u64);
            assert!(is_mis(&g, &out.in_mis), "Δ = {d}");
        }
    }

    #[test]
    fn phases_grow_logarithmically() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut phase_counts = Vec::new();
        for n in [64usize, 512, 4096] {
            let g = generators::random_regular(n, 6, &mut rng).unwrap();
            let out = luby_mis(&g, 9);
            assert!(is_mis(&g, &out.in_mis));
            phase_counts.push(out.phases);
        }
        // 64× more nodes must not multiply phases (log-shape sanity)
        assert!(
            phase_counts[2] <= 3 * phase_counts[0].max(2),
            "phases {phase_counts:?} grew superlogarithmically"
        );
    }

    #[test]
    fn isolated_nodes_always_join() {
        let g = Graph::new(5);
        let out = luby_mis(&g, 0);
        assert!(out.in_mis.iter().all(|&x| x));
        assert_eq!(out.rounds, 0);
    }

    #[test]
    fn cycle_and_path_cases() {
        let g = generators::cycle(101).unwrap();
        let out = luby_mis(&g, 5);
        assert!(is_mis(&g, &out.in_mis));
        let g = generators::path(50);
        let out = luby_mis(&g, 6);
        assert!(is_mis(&g, &out.in_mis));
    }

    #[test]
    fn seed_determinism() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::random_regular(100, 4, &mut rng).unwrap();
        let a = luby_mis(&g, 7);
        let b = luby_mis(&g, 7);
        assert_eq!(a.in_mis, b.in_mis);
        let c = luby_mis(&g, 8);
        assert!(is_mis(&g, &c.in_mis));
    }

    #[test]
    fn complete_graph_selects_exactly_one() {
        let g = generators::complete(12);
        let out = luby_mis(&g, 4);
        assert_eq!(out.in_mis.iter().filter(|&&x| x).count(), 1);
        assert!(is_mis(&g, &out.in_mis));
    }
}
