//! # local-coloring — distributed symmetry-breaking substrate
//!
//! The coloring toolbox the splitting paper's algorithms rely on, every
//! piece implemented as an actual distributed procedure with measured round
//! counts:
//!
//! * [`linial_color`] — Linial's `O(Δ²)`-coloring in `O(log* n)` rounds via
//!   polynomial cover-free families over [`PrimeField`];
//! * [`greedy_reduce`] / [`kw_reduce`] — color reduction to `Δ+1`
//!   (one-class-per-round, and Kuhn–Wattenhofer batched halving — the
//!   stand-in for the linear-in-Δ \[BEK14a\] coloring cited in Lemma 2.1);
//! * [`color_power`] — distance-`k` colorings of `G^k` with the factor-`k`
//!   simulation overhead accounted, as consumed by the SLOCAL→LOCAL
//!   compiler;
//! * [`cole_vishkin_3color`] / [`spaced_ruling_set`] — 3-coloring and
//!   spaced cut-point selection on [`Chains`] (walk decompositions), used by
//!   the distributed degree-splitting engine;
//! * [`luby_mis`] — Luby's randomized MIS as a message-passing baseline for
//!   the flagship symmetry-breaking problem of the paper's introduction.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod chains;
mod gf;
mod linial;
mod mis;
mod power_color;
mod reduce;

pub use chains::{cole_vishkin_3color, spaced_ruling_set, ChainColoring, Chains, RulingSet};
pub use gf::{is_prime, next_prime, PrimeField};
pub use linial::{linial_color, linial_schedule, ColoringOutcome, LinialStep};
pub use mis::{luby_mis, LubyOutcome};
pub use power_color::{color_power, greedy_sequential};
pub use reduce::{greedy_reduce, kw_reduce};
