//! Cole–Vishkin coloring and spaced ruling sets on chains.
//!
//! The walk-decomposition engine of the degree-splitting substrate cuts
//! walks (disjoint paths and cycles over *edge positions*) into short
//! segments. The machinery here runs on an abstract [`Chains`] structure:
//! Cole–Vishkin reduces unique IDs to 3 colors in `log* + O(1)` iterations,
//! and a greedy-by-color pass over the distance-`L` power yields cut points
//! with spacing in `[L+1, 2L+1]`. Round counts are reported in chain-graph
//! rounds; simulating them on the host network costs a constant factor
//! (each chain position is an edge of the host, adjacent positions share a
//! host node).

/// Disjoint union of paths and cycles over positions `0..len`, given by
/// successor/predecessor pointers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chains {
    next: Vec<Option<usize>>,
    prev: Vec<Option<usize>>,
}

impl Chains {
    /// Builds a chain structure from successor pointers.
    ///
    /// # Panics
    ///
    /// Panics if two positions share a successor (the structure would not be
    /// a disjoint union of paths and cycles) or a successor is out of range.
    pub fn from_next(next: Vec<Option<usize>>) -> Self {
        let n = next.len();
        let mut prev = vec![None; n];
        for (i, &nx) in next.iter().enumerate() {
            if let Some(j) = nx {
                assert!(j < n, "successor {j} out of range");
                assert!(prev[j].is_none(), "two positions share successor {j}");
                prev[j] = Some(i);
            }
        }
        Chains { next, prev }
    }

    /// Number of positions.
    pub fn len(&self) -> usize {
        self.next.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.next.is_empty()
    }

    /// Successor of `i`.
    pub fn next(&self, i: usize) -> Option<usize> {
        self.next[i]
    }

    /// Predecessor of `i`.
    pub fn prev(&self, i: usize) -> Option<usize> {
        self.prev[i]
    }
}

/// Result of Cole–Vishkin: a proper 3-coloring along chain edges plus the
/// number of chain-graph rounds consumed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainColoring {
    /// Color per position, in `{0, 1, 2}`.
    pub colors: Vec<u8>,
    /// Chain-graph rounds: one per Cole–Vishkin iteration plus three
    /// shift-down rounds for the 6 → 3 reduction.
    pub rounds: usize,
}

/// Cole–Vishkin 3-coloring of `chains` starting from unique `ids`.
///
/// Iterated bit-comparison with the successor reduces `b`-bit colors to
/// `O(log b)`-bit colors per round, reaching the 6-color fixed point after
/// `log* + O(1)` iterations; three final rounds recolor classes 5, 4, 3
/// greedily (chain degree ≤ 2 leaves a free color in `{0, 1, 2}`).
///
/// # Panics
///
/// Panics if `ids` are not unique per chain edge (adjacent positions must
/// start with different colors) or lengths mismatch.
pub fn cole_vishkin_3color(chains: &Chains, ids: &[u64]) -> ChainColoring {
    let n = chains.len();
    assert_eq!(ids.len(), n, "id vector length mismatch");
    let mut colors: Vec<u64> = ids.to_vec();
    let mut rounds = 0usize;

    // iterate until every color fits in {0..5}
    loop {
        let max = colors.iter().copied().max().unwrap_or(0);
        if max < 6 {
            break;
        }
        let new: Vec<u64> = (0..n)
            .map(|i| {
                let c = colors[i];
                match chains.next(i) {
                    Some(j) => {
                        let d = colors[j];
                        assert_ne!(c, d, "adjacent positions share a color");
                        let bit = (c ^ d).trailing_zeros() as u64;
                        2 * bit + ((c >> bit) & 1)
                    }
                    None => {
                        // tail: fold to bit 0 of own color; differs from the
                        // predecessor's choice by the standard CV argument
                        c & 1
                    }
                }
            })
            .collect();
        colors = new;
        rounds += 1;
    }

    // 6 → 3: recolor classes 5, 4, 3 greedily
    for class in (3..6u64).rev() {
        for i in 0..n {
            if colors[i] == class {
                let mut used = [false; 3];
                if let Some(j) = chains.next(i) {
                    if colors[j] < 3 {
                        used[colors[j] as usize] = true;
                    }
                }
                if let Some(j) = chains.prev(i) {
                    if colors[j] < 3 {
                        used[colors[j] as usize] = true;
                    }
                }
                colors[i] = used.iter().position(|&u| !u).expect("degree ≤ 2 in chains") as u64;
            }
        }
        rounds += 1;
    }

    ChainColoring {
        colors: colors.into_iter().map(|c| c as u8).collect(),
        rounds,
    }
}

/// Result of the spaced ruling-set computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RulingSet {
    /// Whether each position is a cut point.
    pub cut: Vec<bool>,
    /// Chain-graph rounds consumed (`3·spacing`, one greedy sweep per color
    /// class with `spacing`-hop lookaround).
    pub rounds: usize,
}

/// Greedy MIS of the distance-`spacing` power of the chains, scheduled by a
/// 3-coloring: selected positions are pairwise more than `spacing` apart
/// along their chain, and every position is within `2·spacing` of a selected
/// one (on cycles; path ends may be further than `spacing` from a cut only
/// toward the boundary).
///
/// # Panics
///
/// Panics if `spacing == 0` or the coloring is not a valid 3-coloring.
pub fn spaced_ruling_set(chains: &Chains, coloring: &[u8], spacing: usize) -> RulingSet {
    let n = chains.len();
    assert!(spacing > 0, "spacing must be positive");
    assert_eq!(coloring.len(), n, "coloring length mismatch");
    assert!(coloring.iter().all(|&c| c < 3), "expected a 3-coloring");
    let mut cut = vec![false; n];
    for class in 0..3u8 {
        for i in 0..n {
            if coloring[i] != class || cut[i] {
                continue;
            }
            // join unless a cut lies within `spacing` hops in either direction
            let mut blocked = false;
            let mut fwd = chains.next(i);
            let mut bwd = chains.prev(i);
            for _ in 0..spacing {
                if let Some(j) = fwd {
                    if j == i {
                        break; // wrapped a short cycle
                    }
                    if cut[j] {
                        blocked = true;
                        break;
                    }
                    fwd = chains.next(j);
                }
                if blocked {
                    break;
                }
                if let Some(j) = bwd {
                    if j == i {
                        break;
                    }
                    if cut[j] {
                        blocked = true;
                        break;
                    }
                    bwd = chains.prev(j);
                }
            }
            if !blocked {
                cut[i] = true;
            }
        }
    }
    RulingSet {
        cut,
        rounds: 3 * spacing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_chain(n: usize) -> Chains {
        Chains::from_next(
            (0..n)
                .map(|i| if i + 1 < n { Some(i + 1) } else { None })
                .collect(),
        )
    }

    fn cycle_chain(n: usize) -> Chains {
        Chains::from_next((0..n).map(|i| Some((i + 1) % n)).collect())
    }

    fn assert_proper(chains: &Chains, colors: &[u8]) {
        for i in 0..chains.len() {
            if let Some(j) = chains.next(i) {
                assert_ne!(colors[i], colors[j], "positions {i} → {j} share color");
            }
        }
    }

    #[test]
    fn from_next_builds_prev() {
        let c = path_chain(4);
        assert_eq!(c.prev(0), None);
        assert_eq!(c.prev(3), Some(2));
        assert_eq!(c.next(3), None);
        assert_eq!(c.len(), 4);
    }

    #[test]
    #[should_panic(expected = "share successor")]
    fn from_next_rejects_merging() {
        let _ = Chains::from_next(vec![Some(2), Some(2), None]);
    }

    #[test]
    fn cv_colors_long_path() {
        let chains = path_chain(1000);
        let ids: Vec<u64> = (0..1000).map(|i| i * 2_654_435_761 % 1_000_003).collect();
        let out = cole_vishkin_3color(&chains, &ids);
        assert_proper(&chains, &out.colors);
        assert!(out.colors.iter().all(|&c| c < 3));
        assert!(out.rounds <= 10, "rounds = {}", out.rounds);
    }

    #[test]
    fn cv_colors_cycles_of_all_parities() {
        for n in [3usize, 4, 5, 17, 100] {
            let chains = cycle_chain(n);
            let ids: Vec<u64> = (0..n as u64).map(|i| i * 7 + 1).collect();
            let out = cole_vishkin_3color(&chains, &ids);
            assert_proper(&chains, &out.colors);
            assert!(out.colors.iter().all(|&c| c < 3), "cycle {n}");
        }
    }

    #[test]
    fn cv_on_union_of_chains() {
        // two paths and a cycle in one structure
        let mut next = vec![None; 10];
        next[0] = Some(1);
        next[1] = Some(2); // path 0-1-2
        next[3] = Some(4); // path 3-4
        next[5] = Some(6);
        next[6] = Some(7);
        next[7] = Some(5); // cycle 5-6-7
        next[8] = Some(9); // path 8-9
        let chains = Chains::from_next(next);
        let ids: Vec<u64> = (0..10).map(|i| 1000 - 13 * i).collect();
        let out = cole_vishkin_3color(&chains, &ids);
        assert_proper(&chains, &out.colors);
    }

    #[test]
    fn ruling_set_spacing_invariants() {
        let n = 500;
        let chains = cycle_chain(n);
        let ids: Vec<u64> = (0..n as u64).map(|i| (i * 37 + 11) % 10_007).collect();
        let coloring = cole_vishkin_3color(&chains, &ids);
        for spacing in [1usize, 3, 8] {
            let rs = spaced_ruling_set(&chains, &coloring.colors, spacing);
            let cuts: Vec<usize> = (0..n).filter(|&i| rs.cut[i]).collect();
            assert!(!cuts.is_empty());
            // independence: consecutive cuts along the cycle are > spacing apart
            for w in 0..cuts.len() {
                let a = cuts[w];
                let b = cuts[(w + 1) % cuts.len()];
                let gap = (b + n - a) % n;
                if cuts.len() > 1 {
                    assert!(gap > spacing, "cuts {a}, {b} too close (spacing {spacing})");
                }
            }
            // domination: every position within 2·spacing of a cut
            for i in 0..n {
                let ok =
                    (0..=2 * spacing).any(|d| rs.cut[(i + d) % n] || rs.cut[(i + n - d % n) % n]);
                assert!(ok, "position {i} uncovered at spacing {spacing}");
            }
            assert_eq!(rs.rounds, 3 * spacing);
        }
    }

    #[test]
    fn ruling_set_on_short_cycle_picks_one() {
        let chains = cycle_chain(3);
        let coloring = cole_vishkin_3color(&chains, &[5, 9, 14]);
        let rs = spaced_ruling_set(&chains, &coloring.colors, 10);
        let count = rs.cut.iter().filter(|&&c| c).count();
        assert_eq!(count, 1, "a 3-cycle with spacing 10 gets exactly one cut");
    }

    #[test]
    fn empty_chains() {
        let chains = Chains::from_next(vec![]);
        assert!(chains.is_empty());
        let out = cole_vishkin_3color(&chains, &[]);
        assert!(out.colors.is_empty());
    }
}
