//! Distance-`k` colorings.
//!
//! The SLOCAL→LOCAL compiler ([GHK17a, Prop 3.2], used by Lemma 2.1,
//! Theorem 3.2 and Theorem 5.2 of the paper) consumes a proper coloring of a
//! power graph `G^k`. A LOCAL algorithm on `G^k` is simulated on `G` with a
//! factor-`k` round overhead (one `G^k` round = `k` rounds of flooding on
//! `G`); the [`ColoringOutcome::rounds`] reported here already include that
//! factor.

use crate::linial::{linial_color, ColoringOutcome};
use crate::reduce::kw_reduce;
use splitgraph::{power_graph, Graph};

/// Properly colors `G^k` (nodes at distance ≤ `k` receive distinct colors)
/// with `Δ(G^k) + 1` colors via Linial + Kuhn–Wattenhofer reduction.
///
/// Measured rounds are host-graph rounds: `k ×` the rounds of the coloring
/// algorithm on the power graph.
///
/// # Panics
///
/// Panics if `ids` are not consistent with `id_space` or lengths mismatch.
///
/// # Examples
///
/// ```
/// use local_coloring::color_power;
/// use splitgraph::{checks, generators, power_graph};
///
/// let g = generators::cycle(32).unwrap();
/// let ids: Vec<u64> = (0..32).collect();
/// let out = color_power(&g, 2, &ids, 32);
/// // distance-2 coloring: proper on the square of the cycle
/// assert!(checks::is_proper_coloring(&power_graph(&g, 2), &out.colors));
/// ```
pub fn color_power(g: &Graph, k: usize, ids: &[u64], id_space: u64) -> ColoringOutcome {
    assert!(k >= 1, "power must be at least 1");
    let gk = power_graph(g, k);
    let linial = linial_color(&gk, ids, id_space);
    let reduced = kw_reduce(&gk, &linial.colors, linial.palette);
    ColoringOutcome {
        colors: reduced.colors,
        palette: reduced.palette,
        rounds: k * (linial.rounds + reduced.rounds),
        messages: linial.messages + reduced.messages,
    }
}

/// Sequential greedy coloring in a given order — the centralized reference
/// used by tests and by experiments that need *some* proper coloring without
/// round accounting.
///
/// # Panics
///
/// Panics if `order` is not a permutation of the nodes.
pub fn greedy_sequential(g: &Graph, order: &[usize]) -> Vec<u32> {
    let n = g.node_count();
    assert_eq!(order.len(), n, "order must cover every node");
    let mut colors = vec![u32::MAX; n];
    for &v in order {
        assert!(
            v < n && colors[v] == u32::MAX,
            "order must be a permutation"
        );
        let mut used: Vec<u32> = g
            .neighbors(v)
            .iter()
            .map(|&w| colors[w])
            .filter(|&c| c != u32::MAX)
            .collect();
        used.sort_unstable();
        used.dedup();
        let mut c = 0u32;
        for &u in &used {
            if u == c {
                c += 1;
            } else if u > c {
                break;
            }
        }
        colors[v] = c;
    }
    colors
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use splitgraph::checks::is_proper_coloring;
    use splitgraph::generators;

    #[test]
    fn greedy_sequential_uses_at_most_delta_plus_one() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = generators::random_regular(60, 5, &mut rng).unwrap();
        let order: Vec<usize> = (0..60).collect();
        let colors = greedy_sequential(&g, &order);
        assert!(is_proper_coloring(&g, &colors));
        assert!(colors.iter().all(|&c| c <= 5));
    }

    #[test]
    fn color_power_distance2_on_cycle() {
        let g = generators::cycle(50).unwrap();
        let ids: Vec<u64> = (0..50).collect();
        let out = color_power(&g, 2, &ids, 50);
        let g2 = power_graph(&g, 2);
        assert!(is_proper_coloring(&g2, &out.colors));
        assert_eq!(out.palette, g2.max_degree() as u32 + 1);
        assert!(
            out.rounds.is_multiple_of(2),
            "rounds include the simulation factor"
        );
    }

    #[test]
    fn color_power_k1_matches_direct_coloring() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = generators::random_regular(40, 4, &mut rng).unwrap();
        let ids: Vec<u64> = (0..40).collect();
        let out = color_power(&g, 1, &ids, 40);
        assert!(is_proper_coloring(&g, &out.colors));
        assert_eq!(out.palette, 5);
    }

    #[test]
    fn color_power_distance4_for_theorem52() {
        // Theorem 5.2 derandomizes via a coloring of B⁴
        let mut rng = StdRng::seed_from_u64(21);
        let (b, _) = generators::random_girth10_bipartite(40, 3, &mut rng).unwrap();
        let g = b.to_graph();
        let ids: Vec<u64> = (0..g.node_count() as u64).collect();
        let out = color_power(&g, 4, &ids, g.node_count() as u64);
        assert!(is_proper_coloring(&power_graph(&g, 4), &out.colors));
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn greedy_sequential_rejects_bad_order() {
        let g = generators::path(3);
        let _ = greedy_sequential(&g, &[0, 1, 1]);
    }
}
