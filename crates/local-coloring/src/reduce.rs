//! Distributed color reduction.
//!
//! Two standard reducers, both genuine LOCAL node programs:
//!
//! * [`greedy_reduce`] — "one color class per round": each round the highest
//!   remaining class recolors greedily into the target palette; `m → t`
//!   costs `m − t` rounds. Simple, used for small palettes.
//! * [`kw_reduce`] — Kuhn–Wattenhofer batched halving: the palette is cut
//!   into buckets of `2·(Δ+1)` classes, all buckets reduce to `Δ+1` colors
//!   *in parallel* (disjoint target ranges keep properness across buckets),
//!   halving the palette every `2·(Δ+1)` rounds, i.e. `m → Δ+1` in
//!   `O(Δ·log(m/Δ))` rounds.
//!
//! [`kw_reduce`] is the reproduction's stand-in for the linear-in-Δ coloring
//! of [BEK14a] that Lemma 2.1 of the paper cites: same palette, round cost
//! larger only by the `log` factor (substitution recorded in DESIGN.md).

use crate::linial::ColoringOutcome;
use local_runtime::{run_local, NodeContext, NodeProgram, BROADCAST};
use splitgraph::Graph;

/// One-class-per-round reduction from palette `m` to `target ≥ Δ+1`.
///
/// # Panics
///
/// Panics if the input coloring is not proper over palette `m`, or if
/// `target < Δ+1` (greedy needs a free color).
pub fn greedy_reduce(g: &Graph, colors: &[u32], m: u32, target: u32) -> ColoringOutcome {
    let delta = g.max_degree() as u32;
    assert!(
        target > delta,
        "target palette {target} must exceed Δ = {delta}"
    );
    assert_eq!(colors.len(), g.node_count(), "color vector length mismatch");
    assert!(
        colors.iter().all(|&c| c < m),
        "color outside declared palette"
    );
    if m <= target {
        return ColoringOutcome {
            colors: colors.to_vec(),
            palette: m,
            rounds: 0,
            messages: 0,
        };
    }

    struct Greedy {
        color: u32,
        m: u32,
        target: u32,
        phase: u32,
    }
    impl NodeProgram for Greedy {
        type Msg = u32;
        type Output = u32;
        fn init(&mut self, _ctx: &NodeContext) -> Vec<(usize, u32)> {
            vec![(BROADCAST, self.color)]
        }
        fn round(&mut self, _ctx: &NodeContext, inbox: &[(usize, u32)]) -> Vec<(usize, u32)> {
            // class handled this round: m-1, m-2, …, target
            let class = self.m - 1 - self.phase;
            if self.color == class {
                let mut used = vec![false; self.target as usize];
                for &(_, c) in inbox {
                    if c < self.target {
                        used[c as usize] = true;
                    }
                }
                self.color = used
                    .iter()
                    .position(|&u| !u)
                    .expect("degree < target guarantees a free color")
                    as u32;
            }
            self.phase += 1;
            if self.is_done() {
                vec![]
            } else {
                vec![(BROADCAST, self.color)]
            }
        }
        fn is_done(&self) -> bool {
            self.m - 1 - self.phase < self.target
        }
        fn output(&self) -> u32 {
            self.color
        }
    }

    let ids: Vec<u64> = (0..g.node_count() as u64).collect();
    let phases = (m - target) as usize;
    let run = run_local(g, &ids, phases + 1, |ctx| Greedy {
        color: colors[ctx.node],
        m,
        target,
        phase: 0,
    });
    assert!(
        run.completed,
        "greedy reduction must finish in m - target rounds"
    );
    ColoringOutcome {
        colors: run.outputs,
        palette: target,
        rounds: run.rounds,
        messages: run.messages,
    }
}

/// Kuhn–Wattenhofer reduction from palette `m` to `Δ+1` in
/// `O(Δ·log(m/(Δ+1)))` rounds.
///
/// # Panics
///
/// Panics if the input coloring is not proper over palette `m`.
pub fn kw_reduce(g: &Graph, colors: &[u32], m: u32) -> ColoringOutcome {
    let delta = g.max_degree() as u32;
    let target = delta + 1;
    assert_eq!(colors.len(), g.node_count(), "color vector length mismatch");
    assert!(
        colors.iter().all(|&c| c < m),
        "color outside declared palette"
    );

    // per-pass bucket size: 2·(Δ+1) classes collapse to Δ+1
    let bucket = 2 * target;

    /// Palette sizes after each halving pass, ending at `target`.
    fn pass_sizes(mut m: u32, target: u32, bucket: u32) -> Vec<u32> {
        let mut sizes = vec![m];
        while m > target {
            let buckets = m.div_ceil(bucket);
            let next = buckets * target;
            // a single partial bucket of ≤ 2(Δ+1) classes still reduces
            let next = next.min(m - 1).max(target);
            sizes.push(next);
            m = next;
        }
        sizes
    }

    let sizes = pass_sizes(m, target, bucket);
    if sizes.len() == 1 {
        return ColoringOutcome {
            colors: colors.to_vec(),
            palette: m,
            rounds: 0,
            messages: 0,
        };
    }

    struct Kw {
        color: u32,
        sizes: std::rc::Rc<[u32]>,
        bucket: u32,
        target: u32,
        pass: usize,
        slot: u32,
    }
    impl Kw {
        fn done_all(&self) -> bool {
            self.pass + 1 >= self.sizes.len()
        }
    }
    impl NodeProgram for Kw {
        type Msg = u32;
        type Output = u32;
        fn init(&mut self, _ctx: &NodeContext) -> Vec<(usize, u32)> {
            vec![(BROADCAST, self.color)]
        }
        fn round(&mut self, _ctx: &NodeContext, inbox: &[(usize, u32)]) -> Vec<(usize, u32)> {
            // within the current pass, classes with (color % bucket) == slot
            // recolor into their bucket's target range
            let my_bucket = self.color / self.bucket;
            let my_slot = self.color % self.bucket;
            if my_slot == self.slot {
                let base = my_bucket * self.target;
                let mut used = vec![false; self.target as usize];
                for &(_, c) in inbox {
                    // only colors already in my bucket's target range collide
                    if c >= base && c < base + self.target {
                        used[(c - base) as usize] = true;
                    }
                }
                let free = used
                    .iter()
                    .position(|&u| !u)
                    .expect("at most Δ neighbors cannot fill Δ+1 slots");
                self.color = base + free as u32;
            }
            self.slot += 1;
            if self.slot >= self.bucket {
                // pass complete; verify the palette shrank as scheduled
                self.pass += 1;
                self.slot = 0;
                debug_assert!(
                    self.done_all() || self.color < self.sizes[self.pass],
                    "color {} escaped pass palette {}",
                    self.color,
                    self.sizes[self.pass]
                );
            }
            if self.done_all() {
                vec![]
            } else {
                vec![(BROADCAST, self.color)]
            }
        }
        fn is_done(&self) -> bool {
            self.done_all()
        }
        fn output(&self) -> u32 {
            self.color
        }
    }

    let ids: Vec<u64> = (0..g.node_count() as u64).collect();
    let sizes: std::rc::Rc<[u32]> = sizes.into();
    let max_rounds = (sizes.len() - 1) * bucket as usize + 1;
    let run = run_local(g, &ids, max_rounds, |ctx| Kw {
        color: colors[ctx.node],
        sizes: sizes.clone(),
        bucket,
        target,
        pass: 0,
        slot: 0,
    });
    assert!(run.completed, "kw reduction must finish on schedule");
    ColoringOutcome {
        colors: run.outputs,
        palette: target,
        rounds: run.rounds,
        messages: run.messages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use splitgraph::checks::is_proper_coloring;
    use splitgraph::generators;

    fn id_coloring(n: usize) -> Vec<u32> {
        (0..n as u32).collect()
    }

    #[test]
    fn greedy_reduce_path_to_two() {
        let g = generators::path(10);
        let out = greedy_reduce(&g, &id_coloring(10), 10, 3);
        assert!(is_proper_coloring(&g, &out.colors));
        assert!(out.colors.iter().all(|&c| c < 3));
        assert_eq!(out.rounds, 7);
    }

    #[test]
    fn greedy_reduce_noop_when_small() {
        let g = generators::path(4);
        let out = greedy_reduce(&g, &[0, 1, 2, 0], 3, 3);
        assert_eq!(out.rounds, 0);
        assert_eq!(out.palette, 3);
    }

    #[test]
    #[should_panic(expected = "must exceed")]
    fn greedy_reduce_rejects_tiny_target() {
        let g = generators::cycle(4).unwrap();
        let _ = greedy_reduce(&g, &id_coloring(4), 4, 2);
    }

    #[test]
    fn kw_reduce_reaches_delta_plus_one() {
        let mut rng = StdRng::seed_from_u64(4);
        for d in [3usize, 5, 8] {
            let g = generators::random_regular(120, d, &mut rng).unwrap();
            let out = kw_reduce(&g, &id_coloring(120), 120);
            assert!(is_proper_coloring(&g, &out.colors), "Δ = {d}");
            assert_eq!(out.palette, d as u32 + 1);
            assert!(out.colors.iter().all(|&c| c <= d as u32));
        }
    }

    #[test]
    fn kw_beats_greedy_on_rounds_for_large_palettes() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = generators::random_regular(400, 4, &mut rng).unwrap();
        let kw = kw_reduce(&g, &id_coloring(400), 400);
        let greedy = greedy_reduce(&g, &id_coloring(400), 400, 5);
        assert!(is_proper_coloring(&g, &kw.colors));
        assert!(
            kw.rounds < greedy.rounds / 2,
            "kw {} rounds vs greedy {}",
            kw.rounds,
            greedy.rounds
        );
    }

    #[test]
    fn kw_reduce_on_already_small_palette() {
        let g = generators::cycle(6).unwrap();
        let out = kw_reduce(&g, &[0, 1, 2, 0, 1, 2], 3);
        assert_eq!(out.rounds, 0);
        assert_eq!(out.palette, 3);
    }

    #[test]
    fn kw_handles_nonregular_graphs() {
        // star: Δ = 5, palette must end at 6
        let g = Graph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]).unwrap();
        let out = kw_reduce(&g, &id_coloring(6), 6);
        assert!(is_proper_coloring(&g, &out.colors));
        assert_eq!(out.palette, 6);
    }
}
