//! Linial's color reduction: from an ID space of size `m` to `O(Δ²)` colors
//! in `O(log* m)` rounds [Linial '92].
//!
//! One step encodes each color as a polynomial of degree `≤ d` over `GF(q)`
//! with `q > d·Δ` and `q^(d+1) ≥ m`. A node picks a point `(x, f(x))` of its
//! polynomial not hit by any neighbor's polynomial — at most `Δ·d < q` points
//! are hit, so one of the `q` points is free — and adopts `x·q + y` as its
//! new color, shrinking the palette from `m` to `q²`. Iterating reaches the
//! fixed point `q* = nextprime(Δ + 1)`, i.e., a palette of `O(Δ²)` colors,
//! after `O(log* m)` steps.
//!
//! The step is implemented as a genuine LOCAL [`NodeProgram`]: one round per
//! schedule step (broadcast current color, compute the new one).

use crate::gf::{next_prime, PrimeField};
use local_runtime::{run_local, NodeContext, NodeProgram, BROADCAST};
use splitgraph::Graph;

/// One step of the Linial schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinialStep {
    /// Field order (prime, `> degree·Δ`).
    pub q: u64,
    /// Polynomial degree bound.
    pub degree: usize,
    /// Palette size before the step.
    pub colors_in: u64,
    /// Palette size after the step (`q²`).
    pub colors_out: u64,
}

/// The deterministic schedule of Linial steps for reducing a palette of size
/// `id_space` on graphs of maximum degree `max_degree`, iterated until no
/// further progress. Every node can compute this schedule from the global
/// parameters alone, so it costs no communication.
pub fn linial_schedule(id_space: u64, max_degree: usize) -> Vec<LinialStep> {
    let delta = max_degree as u64;
    let mut steps = Vec::new();
    let mut m = id_space.max(2);
    loop {
        // best (d, q): minimize q² subject to q prime, q > d·Δ, q^(d+1) ≥ m
        let mut best: Option<(usize, u64)> = None;
        for d in 1..=64 {
            let root = integer_root_ceil(m, (d + 1) as u32);
            let q = next_prime((d as u64 * delta + 1).max(root).max(2));
            if pow_at_least(q, (d + 1) as u32, m) {
                match best {
                    Some((_, bq)) if bq <= q => {}
                    _ => best = Some((d, q)),
                }
            }
            // once q is forced by d·Δ alone (root no longer binding), larger
            // d only increases q
            if q as u128 >= m as u128 {
                break;
            }
        }
        let (d, q) = best.expect("some degree always satisfies the constraints");
        let out = q * q;
        if out >= m {
            return steps;
        }
        steps.push(LinialStep {
            q,
            degree: d,
            colors_in: m,
            colors_out: out,
        });
        m = out;
    }
}

/// `⌈m^(1/k)⌉` (integer k-th root, rounded up).
fn integer_root_ceil(m: u64, k: u32) -> u64 {
    if m <= 1 {
        return m;
    }
    let mut r = (m as f64).powf(1.0 / k as f64).ceil() as u64;
    // fix float drift in both directions
    while r > 1 && pow_at_least(r - 1, k, m) {
        r -= 1;
    }
    while !pow_at_least(r, k, m) {
        r += 1;
    }
    r
}

/// Whether `base^exp ≥ target`, saturating instead of overflowing.
fn pow_at_least(base: u64, exp: u32, target: u64) -> bool {
    let mut acc: u128 = 1;
    for _ in 0..exp {
        acc = acc.saturating_mul(base as u128);
        if acc >= target as u128 {
            return true;
        }
    }
    acc >= target as u128
}

/// Per-node program executing a precomputed Linial schedule.
struct LinialProgram {
    schedule: std::rc::Rc<[LinialStep]>,
    color: u64,
    step: usize,
}

impl NodeProgram for LinialProgram {
    type Msg = u64;
    type Output = u64;

    fn init(&mut self, ctx: &NodeContext) -> Vec<(usize, u64)> {
        self.color = ctx.id;
        if self.schedule.is_empty() {
            vec![]
        } else {
            vec![(BROADCAST, self.color)]
        }
    }

    fn round(&mut self, _ctx: &NodeContext, inbox: &[(usize, u64)]) -> Vec<(usize, u64)> {
        let st = self.schedule[self.step];
        let field = PrimeField::new(st.q);
        let digits = st.degree + 1;
        debug_assert!(self.color < st.colors_in, "color exceeds declared palette");
        let own = field.digits(self.color, digits);
        let neighbors: Vec<Vec<u64>> = inbox
            .iter()
            .map(|&(_, c)| {
                assert_ne!(c, self.color, "input coloring is not proper");
                field.digits(c, digits)
            })
            .collect();
        let x = (0..st.q)
            .find(|&x| {
                let y = field.eval_poly(&own, x);
                neighbors.iter().all(|nb| field.eval_poly(nb, x) != y)
            })
            .expect("q > d*Δ guarantees an uncovered point");
        self.color = x * st.q + field.eval_poly(&own, x);
        self.step += 1;
        if self.step < self.schedule.len() {
            vec![(BROADCAST, self.color)]
        } else {
            vec![]
        }
    }

    fn is_done(&self) -> bool {
        self.step >= self.schedule.len()
    }

    fn output(&self) -> u64 {
        self.color
    }
}

/// Result of a distributed coloring computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColoringOutcome {
    /// Proper coloring, indexed by node.
    pub colors: Vec<u32>,
    /// Size of the palette the colors are guaranteed to come from.
    pub palette: u32,
    /// Measured LOCAL rounds.
    pub rounds: usize,
    /// Messages delivered by the simulator.
    pub messages: usize,
}

/// Runs Linial's algorithm on `g` with unique `ids` drawn from
/// `0..id_space`, producing an `O(Δ²)`-coloring in `O(log* id_space)`
/// measured rounds.
///
/// # Panics
///
/// Panics if ids exceed `id_space`, collide between neighbors, or
/// `ids.len() != g.node_count()`.
///
/// # Examples
///
/// ```
/// use local_coloring::linial_color;
/// use splitgraph::{checks, generators};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let g = generators::random_regular(64, 4, &mut rng).unwrap();
/// let ids: Vec<u64> = (0..64).collect();
/// let out = linial_color(&g, &ids, 64);
/// assert!(checks::is_proper_coloring(&g, &out.colors));
/// assert!(out.palette <= 2 * (4 * 4 + 1) * (4 * 4 + 1)); // O(Δ²)
/// ```
pub fn linial_color(g: &Graph, ids: &[u64], id_space: u64) -> ColoringOutcome {
    assert!(
        ids.iter().all(|&x| x < id_space),
        "id exceeds declared id space"
    );
    let delta = g.max_degree();
    if delta == 0 {
        return ColoringOutcome {
            colors: vec![0; g.node_count()],
            palette: 1,
            rounds: 0,
            messages: 0,
        };
    }
    let schedule: std::rc::Rc<[LinialStep]> = linial_schedule(id_space, delta).into();
    let palette = schedule.last().map(|s| s.colors_out).unwrap_or(id_space);
    let run = run_local(g, ids, schedule.len() + 1, |_| LinialProgram {
        schedule: schedule.clone(),
        color: 0,
        step: 0,
    });
    assert!(
        run.completed,
        "linial program must terminate within its schedule"
    );
    ColoringOutcome {
        colors: run
            .outputs
            .iter()
            .map(|&c| u32::try_from(c).expect("palette fits u32"))
            .collect(),
        palette: u32::try_from(palette).expect("palette fits u32"),
        rounds: run.rounds,
        messages: run.messages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use splitgraph::checks::is_proper_coloring;
    use splitgraph::generators;

    #[test]
    fn schedule_shrinks_monotonically() {
        let sched = linial_schedule(1_000_000, 8);
        assert!(!sched.is_empty());
        for w in sched.windows(2) {
            assert_eq!(w[0].colors_out, w[1].colors_in);
        }
        for s in &sched {
            assert!(s.colors_out < s.colors_in);
            assert!(s.q > (s.degree as u64) * 8);
            assert!(pow_at_least(s.q, (s.degree + 1) as u32, s.colors_in));
        }
        // fixed point is O(Δ²)
        let last = sched.last().unwrap();
        assert!(
            last.colors_out <= 4 * 8 * 8 * 16,
            "palette {}",
            last.colors_out
        );
    }

    #[test]
    fn schedule_length_is_log_star_ish() {
        // even from an astronomically large ID space, few steps suffice
        let sched = linial_schedule(u64::MAX, 4);
        assert!(
            sched.len() <= 6,
            "schedule unexpectedly long: {}",
            sched.len()
        );
    }

    #[test]
    fn integer_root_exact_and_inexact() {
        assert_eq!(integer_root_ceil(27, 3), 3);
        assert_eq!(integer_root_ceil(28, 3), 4);
        assert_eq!(integer_root_ceil(1, 5), 1);
        assert_eq!(integer_root_ceil(1024, 2), 32);
        assert_eq!(integer_root_ceil(1025, 2), 33);
    }

    #[test]
    fn linial_on_cycle() {
        let g = generators::cycle(101).unwrap();
        let ids: Vec<u64> = (0..101).map(|v| (v * v + v + 1) as u64).collect();
        let space = 101 * 101 + 101 + 2;
        let out = linial_color(&g, &ids, space);
        assert!(is_proper_coloring(&g, &out.colors));
        assert!(out.colors.iter().all(|&c| c < out.palette));
        assert_eq!(out.rounds, linial_schedule(space, 2).len());
    }

    #[test]
    fn linial_on_random_regular() {
        let mut rng = StdRng::seed_from_u64(5);
        for d in [3usize, 6, 10] {
            let g = generators::random_regular(200, d, &mut rng).unwrap();
            let ids: Vec<u64> = (0..200).collect();
            let out = linial_color(&g, &ids, 200);
            assert!(is_proper_coloring(&g, &out.colors), "Δ = {d}");
            let qstar = next_prime(d as u64 + 2);
            assert!(
                out.palette as u64 <= qstar * qstar * 4,
                "palette {} for Δ {d}",
                out.palette
            );
        }
    }

    #[test]
    fn linial_handles_edgeless_graph() {
        let g = Graph::new(5);
        let out = linial_color(&g, &[0, 1, 2, 3, 4], 5);
        assert_eq!(out.palette, 1);
        assert_eq!(out.rounds, 0);
    }

    #[test]
    fn rounds_grow_very_slowly_with_id_space() {
        let g = generators::cycle(64).unwrap();
        let ids: Vec<u64> = (0..64).map(|v| v * 1_000_000_007).collect();
        let out = linial_color(&g, &ids, 64 * 1_000_000_007);
        assert!(is_proper_coloring(&g, &out.colors));
        assert!(out.rounds <= 6, "rounds = {}", out.rounds);
    }
}
