//! Prime-field arithmetic for Linial's cover-free families.
//!
//! Linial's color reduction encodes colors as low-degree polynomials over a
//! prime field `GF(q)`; two distinct degree-`d` polynomials agree on at most
//! `d` points, which is exactly the cover-freeness the algorithm needs. The
//! fields used here are tiny (`q = O(Δ · log n)`), so trial division and
//! `u64`/`u128` arithmetic are ample.

/// Whether `x` is prime (deterministic trial division; intended for the
/// small moduli of Linial schedules).
pub fn is_prime(x: u64) -> bool {
    if x < 2 {
        return false;
    }
    if x.is_multiple_of(2) {
        return x == 2;
    }
    let mut d = 3u64;
    while d.saturating_mul(d) <= x {
        if x.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

/// The smallest prime `≥ x`.
///
/// # Panics
///
/// Panics if the search would overflow `u64` (never for realistic inputs —
/// Bertrand's postulate guarantees a prime below `2x`).
pub fn next_prime(mut x: u64) -> u64 {
    if x <= 2 {
        return 2;
    }
    if x.is_multiple_of(2) {
        x += 1;
    }
    loop {
        if is_prime(x) {
            return x;
        }
        x = x.checked_add(2).expect("prime search overflow");
    }
}

/// The prime field `GF(q)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrimeField {
    q: u64,
}

impl PrimeField {
    /// Creates `GF(q)`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not prime.
    pub fn new(q: u64) -> Self {
        assert!(is_prime(q), "field order {q} is not prime");
        PrimeField { q }
    }

    /// The field order.
    pub fn order(&self) -> u64 {
        self.q
    }

    /// Addition mod `q`.
    pub fn add(&self, a: u64, b: u64) -> u64 {
        ((a as u128 + b as u128) % self.q as u128) as u64
    }

    /// Multiplication mod `q`.
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        ((a as u128 * b as u128) % self.q as u128) as u64
    }

    /// Evaluates the polynomial with the given coefficients
    /// (`coeffs[i]` is the coefficient of `x^i`) at `x`, via Horner.
    pub fn eval_poly(&self, coeffs: &[u64], x: u64) -> u64 {
        let x = x % self.q;
        let mut acc = 0u64;
        for &c in coeffs.iter().rev() {
            acc = self.add(self.mul(acc, x), c % self.q);
        }
        acc
    }

    /// Decomposes `value` into `digits` base-`q` digits, least significant
    /// first — the canonical encoding of a color as a polynomial.
    ///
    /// # Panics
    ///
    /// Panics if `value ≥ q^digits` (the color would not be injectively
    /// encoded).
    pub fn digits(&self, mut value: u64, digits: usize) -> Vec<u64> {
        let mut out = Vec::with_capacity(digits);
        for _ in 0..digits {
            out.push(value % self.q);
            value /= self.q;
        }
        assert_eq!(
            value, 0,
            "value does not fit in {digits} base-{} digits",
            self.q
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primality_small_cases() {
        let primes: Vec<u64> = (0..30).filter(|&x| is_prime(x)).collect();
        assert_eq!(primes, vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29]);
        assert!(is_prime(7919));
        assert!(!is_prime(7917));
    }

    #[test]
    fn next_prime_values() {
        assert_eq!(next_prime(0), 2);
        assert_eq!(next_prime(2), 2);
        assert_eq!(next_prime(3), 3);
        assert_eq!(next_prime(4), 5);
        assert_eq!(next_prime(14), 17);
        assert_eq!(next_prime(7908), 7919);
    }

    #[test]
    #[should_panic(expected = "not prime")]
    fn field_rejects_composite() {
        let _ = PrimeField::new(9);
    }

    #[test]
    fn field_ops() {
        let f = PrimeField::new(7);
        assert_eq!(f.add(5, 4), 2);
        assert_eq!(f.mul(3, 5), 1);
        assert_eq!(f.order(), 7);
    }

    #[test]
    fn horner_matches_naive() {
        let f = PrimeField::new(11);
        // p(x) = 3 + 2x + x^2
        let coeffs = [3, 2, 1];
        for x in 0..11 {
            let naive = (3 + 2 * x + x * x) % 11;
            assert_eq!(f.eval_poly(&coeffs, x), naive);
        }
    }

    #[test]
    fn digits_roundtrip() {
        let f = PrimeField::new(5);
        let d = f.digits(123, 4); // 123 = 3 + 4*5 + 4*25 + 0*125
        assert_eq!(d, vec![3, 4, 4, 0]);
        let rebuilt: u64 = d.iter().rev().fold(0, |acc, &x| acc * 5 + x);
        assert_eq!(rebuilt, 123);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn digits_overflow_panics() {
        let f = PrimeField::new(3);
        let _ = f.digits(100, 2); // 100 > 3^2
    }

    #[test]
    fn distinct_polynomials_agree_on_few_points() {
        // the cover-freeness fact the Linial step relies on
        let f = PrimeField::new(13);
        let a = f.digits(17, 3);
        let b = f.digits(29, 3);
        let agreements = (0..13)
            .filter(|&x| f.eval_poly(&a, x) == f.eval_poly(&b, x))
            .count();
        assert!(
            agreements <= 2,
            "degree-2 polynomials agree on {agreements} > 2 points"
        );
    }
}
