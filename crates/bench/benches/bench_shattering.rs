//! Wall-clock benchmarks for the shattering algorithm and Theorem 1.2
//! (`lem29`/`thm12` timing side).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use splitgraph::generators;
use splitting_core as core;
use std::hint::black_box;

fn bench_shattering(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let small = generators::random_biregular(128, 256, 24, &mut rng).unwrap();
    let large = generators::random_biregular(2048, 8192, 24, &mut rng).unwrap();

    c.bench_function("shatter/128x256_d24", |b| {
        b.iter(|| core::shatter(black_box(&small), 7))
    });
    c.bench_function("shatter/2048x8192_d24", |b| {
        b.iter(|| core::shatter(black_box(&large), 7))
    });
    let cfg = core::Theorem12Config {
        c_constant: 1.5,
        ..Default::default()
    };
    c.bench_function("theorem12/2048x8192_d24", |b| {
        b.iter(|| core::theorem12(black_box(&large), &cfg).unwrap())
    });
}

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_shattering
}
criterion_main!(benches);
