//! Wall-clock benchmarks for the degree-splitting substrate (`abl_engine`
//! timing side).

use criterion::{criterion_group, criterion_main, Criterion};
use degree_split::{eulerian_orientation, walk_splitting, WalkDecomposition};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use splitgraph::MultiGraph;
use std::hint::black_box;

fn random_multigraph(n: usize, m: usize, seed: u64) -> MultiGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = MultiGraph::new(n);
    for _ in 0..m {
        let a = rng.random_range(0..n);
        let mut b = rng.random_range(0..n);
        while b == a {
            b = rng.random_range(0..n);
        }
        g.add_edge(a, b);
    }
    g
}

fn bench_engines(c: &mut Criterion) {
    let g = random_multigraph(500, 10_000, 3);
    c.bench_function("eulerian_orientation/500n_10k_edges", |b| {
        b.iter(|| eulerian_orientation(black_box(&g)))
    });
    c.bench_function("walk_splitting_eps0.1/500n_10k_edges", |b| {
        b.iter(|| walk_splitting(black_box(&g), 0.1))
    });
    c.bench_function("walk_decomposition/500n_10k_edges", |b| {
        b.iter(|| WalkDecomposition::from_pairing(black_box(&g)))
    });
}

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_engines
}
criterion_main!(benches);
