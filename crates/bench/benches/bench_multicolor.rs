//! Wall-clock benchmarks for the Section 3 multicolor algorithms.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use splitgraph::generators;
use splitting_core as core;
use std::hint::black_box;

fn bench_multicolor(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let def13 = generators::random_left_regular(128, 2048, 1024, &mut rng).unwrap();
    let def12 = generators::random_biregular(128, 256, 64, &mut rng).unwrap();

    c.bench_function("weak_multicolor_random/128x2048", |b| {
        b.iter(|| core::weak_multicolor_random(black_box(&def13), 5))
    });
    c.bench_function("weak_multicolor_deterministic/128x2048", |b| {
        b.iter(|| core::weak_multicolor_deterministic(black_box(&def13)).unwrap())
    });
    c.bench_function("multicolor_splitting_det/128x256_lambda0.5", |b| {
        b.iter(|| core::multicolor_splitting_deterministic(black_box(&def12), 8, 0.5).unwrap())
    });
}

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_multicolor
}
criterion_main!(benches);
