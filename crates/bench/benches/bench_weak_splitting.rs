//! Wall-clock benchmarks for the weak-splitting pipelines (experiments
//! `lem21`, `lem22`, `thm25`, `thm27`, `thm12` — the timing side).

use criterion::{criterion_group, criterion_main, Criterion};
use degree_split::Flavor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use splitgraph::generators;
use splitting_core as core;
use std::hint::black_box;

fn bench_pipelines(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let lem21_instance = generators::random_biregular(100, 200, 18, &mut rng).unwrap();
    let thm25_instance = generators::complete_bipartite(64, 512);
    let thm27_instance = generators::random_biregular(12, 72, 12, &mut rng).unwrap();

    c.bench_function("zero_round/100x200", |b| {
        b.iter(|| core::zero_round_coloring(black_box(&lem21_instance), 7))
    });
    c.bench_function("lemma21/100x200_d18", |b| {
        b.iter(|| {
            core::basic_deterministic(black_box(&lem21_instance), lem21_instance.node_count())
                .unwrap()
        })
    });
    c.bench_function("lemma22/100x200_d18", |b| {
        b.iter(|| {
            core::truncated_deterministic(black_box(&lem21_instance), lem21_instance.node_count())
                .unwrap()
        })
    });
    c.bench_function("theorem25/K64x512", |b| {
        b.iter(|| core::theorem25(black_box(&thm25_instance), Flavor::Deterministic).unwrap())
    });
    c.bench_function("theorem27/12x72_d12", |b| {
        b.iter(|| {
            core::theorem27(black_box(&thm27_instance), core::Variant::Deterministic).unwrap()
        })
    });
}

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_pipelines
}
criterion_main!(benches);
