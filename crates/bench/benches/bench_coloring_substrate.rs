//! Wall-clock benchmarks for the symmetry-breaking substrate (Linial,
//! Kuhn–Wattenhofer, Cole–Vishkin).

use criterion::{criterion_group, criterion_main, Criterion};
use local_coloring::{cole_vishkin_3color, kw_reduce, linial_color, Chains};
use rand::rngs::StdRng;
use rand::SeedableRng;
use splitgraph::generators;
use std::hint::black_box;

fn bench_substrate(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let g = generators::random_regular(1000, 8, &mut rng).unwrap();
    let ids: Vec<u64> = (0..1000).collect();

    c.bench_function("linial_color/1000n_d8", |b| {
        b.iter(|| linial_color(black_box(&g), &ids, 1000))
    });
    let lin = linial_color(&g, &ids, 1000);
    c.bench_function("kw_reduce/1000n_d8", |b| {
        b.iter(|| kw_reduce(black_box(&g), &lin.colors, lin.palette))
    });
    let chains = Chains::from_next((0..5000).map(|i| Some((i + 1) % 5000)).collect());
    let chain_ids: Vec<u64> = (0..5000u64)
        .map(|i| i * 2_654_435_761 % 1_000_003)
        .collect();
    c.bench_function("cole_vishkin/5000_cycle", |b| {
        b.iter(|| cole_vishkin_3color(black_box(&chains), &chain_ids))
    });
}

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_substrate
}
criterion_main!(benches);
