//! Wall-clock benchmarks for the Section 4 reductions.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use splitgraph::generators;
use splitting_reductions as red;
use std::hint::black_box;

fn bench_reductions(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let g = generators::random_regular(512, 64, &mut rng).unwrap();
    let eps = red::feasible_eps(512, 64);

    c.bench_function("uniform_splitting_det/512n_d64", |b| {
        b.iter(|| red::uniform_splitting_deterministic(black_box(&g), eps, 64).unwrap())
    });
    c.bench_function("delta_coloring/512n_d64", |b| {
        b.iter(|| red::delta_coloring_via_splitting(black_box(&g), 36, None).unwrap())
    });
    c.bench_function("mis_via_splitting/512n_d64", |b| {
        b.iter(|| red::mis_via_splitting(black_box(&g), 36, 9))
    });
}

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_reductions
}
criterion_main!(benches);
