//! End-to-end pipeline benchmarks: whole-solver scenarios and before/after
//! measurements of the derandomization engine.
//!
//! Two record kinds feed `BENCH_pipeline.json`:
//!
//! * **fixer** records measure the conditional-expectation fixers against a
//!   faithful private replica of the pre-incremental engine (per-constraint
//!   count `Vec`s, `powi` per candidate term, pairwise `O(Σ deg²)` schedule
//!   verification, per-class `O(nv)` decider scans) — the *before* side is
//!   kept here so the speedup stays measurable long after the library has
//!   moved on, and every run cross-checks that the live engine produces
//!   bit-identical colors and `Φ` values;
//! * **scenario** records measure whole-solver wall times — the
//!   [`splitting_core::WeakSplittingSolver`] dispatch paths (Theorem 2.5 /
//!   zero-round / Theorem 1.2 / Theorem 2.7), multicolor splitting, and
//!   uniform splitting — across sparse, dense, and left-regular instances,
//!   with the outputs validity-checked.

use crate::json::esc;
use crate::table::{fnum, Table};
use derand::{phased_fix, ColoringEstimator, FixOutcome};
use local_coloring::greedy_sequential;
use rand::rngs::StdRng;
use rand::SeedableRng;
use splitgraph::{checks, generators, right_square, BipartiteGraph, MultiColor};
use splitting_core::{
    multicolor_splitting_deterministic, weak_multicolor_deterministic, Pipeline,
    WeakSplittingSolver,
};
use splitting_reductions::{feasible_eps, uniform_splitting_deterministic};
use std::time::Instant;

/// One pipeline measurement: a before/after fixer record
/// (`wall_ns_before = Some(..)`) or a wall-only solver scenario.
#[derive(Debug, Clone)]
pub struct PipelineRecord {
    /// Record name, e.g. `sequential_fix_overload_left_regular`.
    pub name: &'static str,
    /// Total node count of the instance (`|U| + |V|` or `n`).
    pub n: usize,
    /// Edge count of the instance.
    pub m: usize,
    /// Free-form parameters (estimator, palette, dispatch, ε, …).
    pub detail: String,
    /// Wall time of the pre-incremental replica (fixer records only).
    pub wall_ns_before: Option<u128>,
    /// Wall time of the live implementation, nanoseconds.
    pub wall_ns: u128,
}

impl PipelineRecord {
    /// `before / after` wall-time ratio, for fixer records.
    pub fn speedup(&self) -> Option<f64> {
        self.wall_ns_before
            .map(|before| before as f64 / self.wall_ns.max(1) as f64)
    }
}

/// A full pipeline benchmark run.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// `"quick"` or `"full"`.
    pub mode: &'static str,
    /// `std::thread::available_parallelism()` of the measuring host.
    pub host_parallelism: usize,
    /// All measurements.
    pub records: Vec<PipelineRecord>,
}

impl PipelineReport {
    /// Serializes the report for `BENCH_pipeline.json`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\n  \"bench\": \"pipeline\",\n  \"mode\": \"{}\",\n  \"host_parallelism\": {},\n  \"records\": [",
            esc(self.mode),
            self.host_parallelism
        ));
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let kind = if r.wall_ns_before.is_some() {
                "fixer"
            } else {
                "scenario"
            };
            out.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"kind\": \"{}\", \"n\": {}, \"m\": {}, \"detail\": \"{}\"",
                esc(r.name),
                kind,
                r.n,
                r.m,
                esc(&r.detail)
            ));
            if let (Some(before), Some(speedup)) = (r.wall_ns_before, r.speedup()) {
                out.push_str(&format!(
                    ", \"wall_ns_before\": {before}, \"wall_ns_after\": {}, \"speedup\": {speedup:.2}}}",
                    r.wall_ns
                ));
            } else {
                out.push_str(&format!(", \"wall_ns\": {}}}", r.wall_ns));
            }
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

// ---------------------------------------------------------------------------
// pre-incremental engine replica (the "before" side of fixer records)
// ---------------------------------------------------------------------------

/// The seed fixer state: one count `Vec` per constraint, running base sums,
/// and `powi` on every candidate evaluation.
///
/// Deliberately duplicates the `NaiveRef` reference in
/// `crates/derand/tests/fixer_parity.rs` rather than sharing code: this
/// copy is the frozen *before* side of the speedup records and must stay
/// the verbatim pre-incremental engine even if the parity reference ever
/// evolves. Keep the `S_u ← S_u − old + new` recurrence in both (see the
/// parity test's module docs for why re-summing `S_u` from scratch breaks
/// tie-breaking).
struct SeedFixerState {
    est: ColoringEstimator,
    counts: Vec<Vec<u32>>,
    unfixed: Vec<usize>,
    sums: Vec<f64>,
}

impl SeedFixerState {
    fn new(b: &BipartiteGraph, est: ColoringEstimator) -> Self {
        let c = est.palette() as usize;
        SeedFixerState {
            counts: vec![vec![0u32; c]; b.left_count()],
            unfixed: (0..b.left_count()).map(|u| b.left_degree(u)).collect(),
            sums: (0..b.left_count())
                .map(|u| c as f64 * est.base(u, 0))
                .collect(),
            est,
        }
    }

    fn phi(&self, u: usize) -> f64 {
        self.est.factor().powi(self.unfixed[u] as i32) * self.sums[u]
    }

    fn total(&self) -> f64 {
        (0..self.sums.len()).map(|u| self.phi(u)).sum()
    }

    fn phi_after(&self, u: usize, x: u32) -> f64 {
        let old = self.est.base(u, self.counts[u][x as usize]);
        let new = self.est.base(u, self.counts[u][x as usize] + 1);
        self.est.factor().powi(self.unfixed[u] as i32 - 1) * (self.sums[u] - old + new)
    }

    fn best_color(&self, b: &BipartiteGraph, v: usize) -> u32 {
        let mut best = 0u32;
        let mut best_score = f64::INFINITY;
        for x in 0..self.est.palette() {
            let score: f64 = b
                .right_neighbors(v)
                .iter()
                .map(|&u| self.phi_after(u, x))
                .sum();
            if score < best_score {
                best_score = score;
                best = x;
            }
        }
        best
    }

    fn fix(&mut self, b: &BipartiteGraph, v: usize, x: u32) {
        for &u in b.right_neighbors(v) {
            let old = self.est.base(u, self.counts[u][x as usize]);
            self.counts[u][x as usize] += 1;
            let new = self.est.base(u, self.counts[u][x as usize]);
            self.sums[u] += new - old;
            self.unfixed[u] -= 1;
        }
    }
}

/// The seed `sequential_fix` (identity order).
fn seed_sequential_fix(b: &BipartiteGraph, est: ColoringEstimator) -> FixOutcome {
    let nv = b.right_count();
    let mut state = SeedFixerState::new(b, est);
    let initial_phi = state.total();
    let mut colors = vec![0 as MultiColor; nv];
    for (v, slot) in colors.iter_mut().enumerate() {
        let x = state.best_color(b, v);
        state.fix(b, v, x);
        *slot = x;
    }
    FixOutcome {
        colors,
        initial_phi,
        final_phi: state.total(),
        rounds: 0,
    }
}

/// The seed `phased_fix`: pairwise `O(Σ deg²)` schedule verification and a
/// full `O(nv)` decider scan per color class.
fn seed_phased_fix(
    b: &BipartiteGraph,
    est: ColoringEstimator,
    square_coloring: &[u32],
    palette: u32,
) -> FixOutcome {
    let nv = b.right_count();
    assert_eq!(square_coloring.len(), nv, "square coloring length mismatch");
    for u in 0..b.left_count() {
        let nbrs = b.left_neighbors(u);
        for (i, &v) in nbrs.iter().enumerate() {
            for &w in &nbrs[i + 1..] {
                assert_ne!(
                    square_coloring[v], square_coloring[w],
                    "variables {v} and {w} share constraint {u} but have the same class"
                );
            }
        }
    }
    let mut state = SeedFixerState::new(b, est);
    let initial_phi = state.total();
    let mut colors = vec![0 as MultiColor; nv];
    let mut rounds = 0usize;
    for class in 0..palette {
        let deciders: Vec<usize> = (0..nv).filter(|&v| square_coloring[v] == class).collect();
        if deciders.is_empty() {
            rounds += 2;
            continue;
        }
        let choices: Vec<u32> = deciders.iter().map(|&v| state.best_color(b, v)).collect();
        for (&v, &x) in deciders.iter().zip(&choices) {
            state.fix(b, v, x);
            colors[v] = x;
        }
        rounds += 2;
    }
    FixOutcome {
        colors,
        initial_phi,
        final_phi: state.total(),
        rounds,
    }
}

// ---------------------------------------------------------------------------
// measurement harness
// ---------------------------------------------------------------------------

/// Instance sizes for one benchmark tier.
struct Scale {
    mode: &'static str,
    /// Headline left-regular overload instance `(nc, nv, deg)`.
    fix_overload: (usize, usize, usize),
    /// Monochromatic left-regular instance `(nc, nv, deg)`.
    fix_mono: (usize, usize, usize),
    /// Phased-fix instance `(nc, nv, deg)` (square coloring scheduled).
    fix_phased: (usize, usize, usize),
    /// Theorem 2.7 biregular instance `(nu, nv, left_deg)` with `δ ≥ 6r`.
    thm27: (usize, usize, usize),
    /// Theorem 2.5 / zero-round biregular instance `(nu, nv, left_deg)`.
    thm25: (usize, usize, usize),
    /// Dense Theorem 2.5 instance `(nu, nv, left_deg)` with
    /// `δ > 48·log n`, driving the Degree–Rank Reduction branch.
    thm25_drr: (usize, usize, usize),
    /// Theorem 1.2 shattering-window biregular instance `(nu, nv, left_deg)`.
    thm12: (usize, usize, usize),
    /// Dense Definition 1.3 multicolor instance `(nc, nv, deg)`.
    multicolor_weak: (usize, usize, usize),
    /// (C, λ) multicolor biregular instance `(nu, nv, left_deg)`.
    multicolor_cl: (usize, usize, usize),
    /// Uniform-splitting regular graph `(n, deg)`.
    uniform: (usize, usize),
}

const FULL: Scale = Scale {
    mode: "full",
    fix_overload: (3_125, 100_000, 128),
    fix_mono: (12_500, 100_000, 32),
    fix_phased: (12_500, 100_000, 32),
    thm27: (10_000, 60_000, 24),
    thm25: (30_000, 30_000, 32),
    thm25_drr: (2_000, 64_000, 800),
    thm12: (16_384, 57_344, 28),
    multicolor_weak: (256, 4_096, 1_024),
    multicolor_cl: (2_048, 4_096, 64),
    uniform: (20_000, 192),
};

const QUICK: Scale = Scale {
    mode: "quick",
    fix_overload: (400, 12_800, 128),
    fix_mono: (1_600, 12_800, 32),
    fix_phased: (1_600, 12_800, 32),
    thm27: (1_000, 6_000, 24),
    thm25: (4_000, 4_000, 26),
    thm25_drr: (125, 8_000, 704),
    thm12: (2_048, 6_144, 24),
    multicolor_weak: (128, 2_048, 512),
    multicolor_cl: (512, 1_024, 64),
    uniform: (2_000, 128),
};

#[cfg(test)]
const TINY: Scale = Scale {
    mode: "tiny",
    fix_overload: (32, 512, 48),
    fix_mono: (96, 768, 20),
    fix_phased: (96, 768, 20),
    thm27: (64, 384, 24),
    thm25: (220, 220, 18),
    thm25_drr: (64, 1_024, 512),
    thm12: (512, 1_280, 20),
    multicolor_weak: (24, 384, 256),
    multicolor_cl: (96, 192, 64),
    uniform: (256, 64),
};

fn time<T>(f: impl FnOnce() -> T) -> (T, u128) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_nanos())
}

/// Asserts the live fixer reproduced the replica's outputs bit for bit.
fn assert_fix_parity(name: &str, seed: &FixOutcome, live: &FixOutcome) {
    assert_eq!(seed.colors, live.colors, "{name}: colors diverged");
    assert_eq!(
        seed.initial_phi.to_bits(),
        live.initial_phi.to_bits(),
        "{name}: initial Φ diverged"
    );
    assert_eq!(
        seed.final_phi.to_bits(),
        live.final_phi.to_bits(),
        "{name}: final Φ diverged"
    );
    assert_eq!(seed.rounds, live.rounds, "{name}: rounds diverged");
}

fn run_sized(scale: &Scale) -> (Vec<Table>, PipelineReport) {
    let mut records = Vec::new();

    // -- fixer before/after records --------------------------------------

    // headline: overload estimator on a left-regular instance (the MGF
    // terms exercise the power tables hardest)
    {
        let (nc, nv, deg) = scale.fix_overload;
        let mut rng = StdRng::seed_from_u64(71);
        let b = generators::random_left_regular(nc, nv, deg, &mut rng).expect("feasible");
        let cap = deg / 2; // λ = 1/2 over a 4-color palette: Chernoff certifies
        let t = derand::chernoff_t(cap as f64, 4, deg as f64);
        let caps = vec![cap; nc];
        let est = ColoringEstimator::overload(&b, 4, &caps, t);
        let (live, wall_after) = time(|| derand::sequential_fix_identity(&b, est.clone()));
        let (seed, wall_before) = time(|| seed_sequential_fix(&b, est));
        assert_fix_parity("sequential_fix_overload", &seed, &live);
        records.push(PipelineRecord {
            name: "sequential_fix_overload_left_regular",
            n: b.node_count(),
            m: b.edge_count(),
            detail: format!("palette=4 cap={cap} initial_phi={:.2e}", live.initial_phi),
            wall_ns_before: Some(wall_before),
            wall_ns: wall_after,
        });
    }

    // monochromatic weak splitting, sequential
    {
        let (nc, nv, deg) = scale.fix_mono;
        let mut rng = StdRng::seed_from_u64(72);
        let b = generators::random_left_regular(nc, nv, deg, &mut rng).expect("feasible");
        let est = ColoringEstimator::monochromatic(&b);
        let (live, wall_after) = time(|| derand::sequential_fix_identity(&b, est.clone()));
        let (seed, wall_before) = time(|| seed_sequential_fix(&b, est));
        assert_fix_parity("sequential_fix_monochromatic", &seed, &live);
        records.push(PipelineRecord {
            name: "sequential_fix_monochromatic_left_regular",
            n: b.node_count(),
            m: b.edge_count(),
            detail: format!("palette=2 initial_phi={:.2e}", live.initial_phi),
            wall_ns_before: Some(wall_before),
            wall_ns: wall_after,
        });
    }

    // monochromatic weak splitting, phased (schedule verification + class
    // bucketing dominate the delta here)
    {
        let (nc, nv, deg) = scale.fix_phased;
        let mut rng = StdRng::seed_from_u64(73);
        let b = generators::random_left_regular(nc, nv, deg, &mut rng).expect("feasible");
        let sq = right_square(&b);
        let order: Vec<usize> = (0..sq.node_count()).collect();
        let sched = greedy_sequential(&sq, &order);
        let palette = sched.iter().copied().max().map_or(1, |c| c + 1);
        let est = ColoringEstimator::monochromatic(&b);
        let (live, wall_after) = time(|| phased_fix(&b, est.clone(), &sched, palette));
        let (seed, wall_before) = time(|| seed_phased_fix(&b, est, &sched, palette));
        assert_fix_parity("phased_fix_monochromatic", &seed, &live);
        records.push(PipelineRecord {
            name: "phased_fix_monochromatic_left_regular",
            n: b.node_count(),
            m: b.edge_count(),
            detail: format!("classes={palette} rounds={}", live.rounds),
            wall_ns_before: Some(wall_before),
            wall_ns: wall_after,
        });
    }

    // -- whole-solver scenario records ------------------------------------

    // WeakSplittingSolver dispatch: Theorem 2.7 on a skewed sparse instance
    {
        let (nu, nv, dl) = scale.thm27;
        let mut rng = StdRng::seed_from_u64(74);
        let b = generators::random_biregular(nu, nv, dl, &mut rng).expect("feasible");
        let solver = WeakSplittingSolver {
            allow_randomized: false,
            ..Default::default()
        };
        let ((out, plan), wall) = time(|| solver.solve(&b).expect("in regime"));
        assert_eq!(plan, Pipeline::Theorem27);
        assert!(checks::is_weak_splitting(&b, &out.colors, 0));
        records.push(PipelineRecord {
            name: "solver_thm27_sparse_biregular",
            n: b.node_count(),
            m: b.edge_count(),
            detail: format!("dispatch={plan:?} rounds={:.0}", out.ledger.total()),
            wall_ns_before: None,
            wall_ns: wall,
        });
    }

    // WeakSplittingSolver dispatch: Theorem 2.5 (deterministic) and the
    // zero-round randomized path on the same balanced instance
    {
        let (nu, nv, dl) = scale.thm25;
        let mut rng = StdRng::seed_from_u64(75);
        let b = generators::random_biregular(nu, nv, dl, &mut rng).expect("feasible");
        let det = WeakSplittingSolver {
            allow_randomized: false,
            ..Default::default()
        };
        let ((out, plan), wall) = time(|| det.solve(&b).expect("in regime"));
        assert_eq!(plan, Pipeline::Theorem25);
        assert!(checks::is_weak_splitting(&b, &out.colors, 0));
        records.push(PipelineRecord {
            name: "solver_thm25_biregular",
            n: b.node_count(),
            m: b.edge_count(),
            detail: format!("dispatch={plan:?} rounds={:.0}", out.ledger.total()),
            wall_ns_before: None,
            wall_ns: wall,
        });

        let ran = WeakSplittingSolver::default();
        let ((out, plan), wall) = time(|| ran.solve(&b).expect("in regime"));
        assert_eq!(plan, Pipeline::ZeroRound);
        assert!(checks::is_weak_splitting(&b, &out.colors, 0));
        records.push(PipelineRecord {
            name: "solver_zero_round_biregular",
            n: b.node_count(),
            m: b.edge_count(),
            detail: format!("dispatch={plan:?}"),
            wall_ns_before: None,
            wall_ns: wall,
        });
    }

    // Theorem 2.5's Degree–Rank Reduction branch on a dense skewed
    // instance (δ > 48·log n; called directly — the solver would dispatch
    // such a δ ≥ 6r instance to Theorem 2.7)
    {
        let (nu, nv, dl) = scale.thm25_drr;
        let mut rng = StdRng::seed_from_u64(80);
        let b = generators::random_biregular(nu, nv, dl, &mut rng).expect("feasible");
        let ((out, report), wall) = time(|| {
            splitting_core::theorem25(&b, degree_split::Flavor::Deterministic).expect("in regime")
        });
        assert!(report.drr_iterations >= 1, "expected the DRR branch");
        assert!(checks::is_weak_splitting(&b, &out.colors, 0));
        records.push(PipelineRecord {
            name: "thm25_drr_dense_biregular",
            n: b.node_count(),
            m: b.edge_count(),
            detail: format!(
                "drr_iters={} reduced_rank={} eps={:.2}",
                report.drr_iterations, report.reduced_rank, report.eps
            ),
            wall_ns_before: None,
            wall_ns: wall,
        });
    }

    // WeakSplittingSolver dispatch: Theorem 1.2 in the shattering window
    {
        let (nu, nv, dl) = scale.thm12;
        let mut rng = StdRng::seed_from_u64(76);
        let b = generators::random_biregular(nu, nv, dl, &mut rng).expect("feasible");
        let solver = WeakSplittingSolver {
            thm12_constant: 1.5,
            ..Default::default()
        };
        let ((out, plan), wall) = time(|| solver.solve(&b).expect("in regime"));
        assert_eq!(plan, Pipeline::Theorem12);
        assert!(checks::is_weak_splitting(&b, &out.colors, 0));
        records.push(PipelineRecord {
            name: "solver_thm12_shattering_window",
            n: b.node_count(),
            m: b.edge_count(),
            detail: format!("dispatch={plan:?}"),
            wall_ns_before: None,
            wall_ns: wall,
        });
    }

    // deterministic C-weak multicolor splitting on a dense instance
    {
        let (nc, nv, deg) = scale.multicolor_weak;
        let mut rng = StdRng::seed_from_u64(77);
        let b = generators::random_left_regular(nc, nv, deg, &mut rng).expect("feasible");
        let (out, wall) = time(|| weak_multicolor_deterministic(&b).expect("in regime"));
        records.push(PipelineRecord {
            name: "multicolor_weak_det_dense",
            n: b.node_count(),
            m: b.edge_count(),
            detail: format!("palette={}", out.palette),
            wall_ns_before: None,
            wall_ns: wall,
        });
    }

    // deterministic (C, λ) multicolor splitting
    {
        let (nu, nv, dl) = scale.multicolor_cl;
        let mut rng = StdRng::seed_from_u64(78);
        let b = generators::random_biregular(nu, nv, dl, &mut rng).expect("feasible");
        let (out, wall) =
            time(|| multicolor_splitting_deterministic(&b, 8, 0.5).expect("in regime"));
        assert!(checks::is_multicolor_splitting(
            &b,
            &out.colors,
            out.palette,
            0.5,
            0
        ));
        records.push(PipelineRecord {
            name: "multicolor_cl_det_biregular",
            n: b.node_count(),
            m: b.edge_count(),
            detail: format!("C=8 lambda=0.5 palette={}", out.palette),
            wall_ns_before: None,
            wall_ns: wall,
        });
    }

    // deterministic uniform (strong) splitting on a dense regular graph
    {
        let (n, deg) = scale.uniform;
        let mut rng = StdRng::seed_from_u64(79);
        let g = generators::random_regular(n, deg, &mut rng).expect("feasible");
        let eps = feasible_eps(n, deg);
        let (out, wall) =
            time(|| uniform_splitting_deterministic(&g, eps, deg).expect("certified"));
        assert!(checks::is_uniform_splitting(&g, &out.colors, eps, deg));
        records.push(PipelineRecord {
            name: "uniform_split_det_regular",
            n: g.node_count(),
            m: g.edge_count(),
            detail: format!("eps={eps:.3} min_degree={deg}"),
            wall_ns_before: None,
            wall_ns: wall,
        });
    }

    let host_parallelism = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut t = Table::new(
        "pipeline — end-to-end solver scenarios and fixer before/after",
        &[
            "record",
            "n",
            "m",
            "before ms",
            "wall ms",
            "speedup",
            "detail",
        ],
    );
    for r in &records {
        t.row(vec![
            r.name.into(),
            r.n.to_string(),
            r.m.to_string(),
            r.wall_ns_before
                .map_or("-".into(), |w| fnum(w as f64 / 1e6)),
            fnum(r.wall_ns as f64 / 1e6),
            r.speedup().map_or("-".into(), fnum),
            r.detail.clone(),
        ]);
    }
    (
        vec![t],
        PipelineReport {
            mode: scale.mode,
            host_parallelism,
            records,
        },
    )
}

/// `pipeline` — end-to-end benchmark of the theorem pipelines and the
/// derandomization engine. Returns the printable table and the
/// machine-readable report for `BENCH_pipeline.json`.
pub fn run_pipeline_perf(quick: bool) -> (Vec<Table>, PipelineReport) {
    run_sized(if quick { &QUICK } else { &FULL })
}

#[cfg(test)]
mod tests {
    use super::*;
    use derand::sequential_fix;

    #[test]
    fn tiny_run_produces_consistent_records() {
        let (tables, report) = run_sized(&TINY);
        assert_eq!(report.records.len(), 11);
        assert_eq!(tables[0].row_count(), 11);
        let fixer = report
            .records
            .iter()
            .filter(|r| r.wall_ns_before.is_some())
            .count();
        assert_eq!(fixer, 3, "three before/after fixer records");
        for r in &report.records {
            assert!(r.wall_ns > 0, "{}", r.name);
            assert!(r.n > 0 && r.m > 0);
        }
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"pipeline\""));
        assert!(json.contains("\"kind\": \"fixer\""));
        assert!(json.contains("\"kind\": \"scenario\""));
        assert!(json.contains("sequential_fix_overload_left_regular"));
        assert!(json.contains("\"host_parallelism\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn seed_phased_fix_matches_live_on_reference_schedule() {
        let mut rng = StdRng::seed_from_u64(5);
        let b = generators::random_left_regular(30, 60, 12, &mut rng).unwrap();
        let sq = right_square(&b);
        let order: Vec<usize> = (0..sq.node_count()).collect();
        let sched = greedy_sequential(&sq, &order);
        let palette = sched.iter().copied().max().map_or(1, |c| c + 1);
        let est = ColoringEstimator::monochromatic(&b);
        let seed = seed_phased_fix(&b, est.clone(), &sched, palette);
        let live = phased_fix(&b, est.clone(), &sched, palette);
        assert_fix_parity("test", &seed, &live);
        // explicit-order sequential replica cross-check as well
        let ord: Vec<usize> = (0..b.right_count()).collect();
        let live_seq = sequential_fix(&b, est.clone(), &ord);
        let seed_seq = seed_sequential_fix(&b, est);
        assert_fix_parity("test-seq", &seed_seq, &live_seq);
    }
}
