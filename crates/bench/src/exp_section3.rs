//! Experiments for Section 3: the multicolor completeness results
//! (`thm32`, `thm33`).

use crate::table::{fnum, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use splitgraph::math::{weak_multicolor_degree_threshold, weak_multicolor_required_colors};
use splitgraph::{checks, generators, BipartiteGraph};
use splitting_core as core;

fn def13_instance(u: usize, v: usize, d: usize, seed: u64) -> BipartiteGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    generators::random_left_regular(u, v, d, &mut rng).expect("feasible")
}

/// `thm32` — C-weak multicolor splitting: membership (randomized +
/// derandomized) and the reduction back to weak splitting.
pub fn exp_thm32(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "thm32 — Theorem 3.2: C-weak multicolor splitting membership",
        &[
            "n",
            "deg",
            "C=⌈2log n⌉",
            "min distinct (rand)",
            "min distinct (det)",
            "required",
            "valid",
        ],
    );
    let sweep: &[(usize, usize, usize)] = if quick {
        &[(128, 2048, 1024)]
    } else {
        &[(128, 2048, 1024), (192, 3072, 1536)]
    };
    for (i, &(u, v, d)) in sweep.iter().enumerate() {
        let b = def13_instance(u, v, d, 800 + i as u64);
        let n = b.node_count();
        let required = weak_multicolor_required_colors(n);
        let rand = core::weak_multicolor_random(&b, 31 + i as u64);
        let det = core::weak_multicolor_deterministic(&b).expect("regime holds");
        let distinct_min = |colors: &[u32]| {
            (0..b.left_count())
                .map(|uu| {
                    let mut s = std::collections::HashSet::new();
                    for &vv in b.left_neighbors(uu) {
                        s.insert(colors[vv]);
                    }
                    s.len()
                })
                .min()
                .unwrap_or(0)
        };
        let dr = distinct_min(&rand.colors);
        let dd = distinct_min(&det.colors);
        let valid = checks::is_weak_multicolor_splitting(
            &b,
            &det.colors,
            weak_multicolor_degree_threshold(n),
            required,
        );
        t.row(vec![
            n.to_string(),
            d.to_string(),
            det.palette.to_string(),
            dr.to_string(),
            dd.to_string(),
            required.to_string(),
            valid.to_string(),
        ]);
    }

    let mut t2 = Table::new(
        "thm32 — reduction: weak splitting via weak multicolor (O(C) phases)",
        &["n", "C", "phase rounds (2·C)", "weak splitting valid"],
    );
    let b = def13_instance(128, 2048, 1024, 900);
    let out = core::weak_splitting_via_weak_multicolor(&b).expect("regime holds");
    let c = weak_multicolor_required_colors(b.node_count());
    let phase_rounds = out
        .ledger
        .entries()
        .iter()
        .find(|e| e.label.contains("phases on B'"))
        .map_or(0.0, |e| e.rounds);
    t2.row(vec![
        b.node_count().to_string(),
        c.to_string(),
        fnum(phase_rounds),
        checks::is_weak_splitting(&b, &out.colors, 0).to_string(),
    ]);
    vec![t, t2]
}

/// `thm33` — (C, λ)-multicolor splitting membership and the iterated
/// refinement reduction.
pub fn exp_thm33(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "thm33 — Theorem 3.3: (C, λ)-multicolor splitting membership",
        &["n", "deg", "λ", "C'", "max load / cap", "valid"],
    );
    let lambdas: &[f64] = if quick { &[0.5] } else { &[0.75, 0.5, 0.25] };
    for (i, &lambda) in lambdas.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(1000 + i as u64);
        let b = generators::random_biregular(128, 256, 64, &mut rng).expect("feasible");
        let out = core::multicolor_splitting_deterministic(&b, 16, lambda).expect("regime holds");
        let valid = checks::is_multicolor_splitting(&b, &out.colors, out.palette, lambda, 0);
        // worst load fraction over constraints and colors
        let mut worst = 0.0f64;
        for uu in 0..b.left_count() {
            let mut counts = vec![0usize; out.palette as usize];
            for &vv in b.left_neighbors(uu) {
                counts[out.colors[vv] as usize] += 1;
            }
            let cap = (lambda * b.left_degree(uu) as f64).ceil();
            let max = *counts.iter().max().unwrap() as f64;
            worst = worst.max(max / cap);
        }
        t.row(vec![
            b.node_count().to_string(),
            "64".into(),
            fnum(lambda),
            out.palette.to_string(),
            fnum(worst),
            valid.to_string(),
        ]);
    }

    let mut t2 = Table::new(
        "thm33 — iterated reduction: class-fraction decay toward 1/(2·log n)",
        &["iteration", "max class fraction", "λ^i target"],
    );
    let b = def13_instance(128, 3072, 1536, 1100);
    let cfg = core::Theorem33Config {
        c: 16,
        lambda: 0.5,
        alpha: 16.0,
    };
    let (colors, report, _ledger) =
        core::weak_multicolor_via_multicolor_splitting(&b, &cfg).expect("regime holds");
    for (i, &f) in report.class_fractions.iter().enumerate() {
        t2.row(vec![
            (i + 1).to_string(),
            fnum(f),
            fnum(0.5f64.powi(i as i32 + 1)),
        ]);
    }
    let mut t3 = Table::new(
        "thm33 — final refinement summary",
        &[
            "iterations",
            "total colors C''",
            "min distinct colors",
            "required 2·log n",
        ],
    );
    let required = weak_multicolor_required_colors(b.node_count());
    let distinct_min = (0..b.left_count())
        .map(|uu| {
            let mut s = std::collections::HashSet::new();
            for &vv in b.left_neighbors(uu) {
                s.insert(colors[vv]);
            }
            s.len()
        })
        .min()
        .unwrap_or(0);
    t3.row(vec![
        report.iterations.to_string(),
        report.total_colors.to_string(),
        distinct_min.to_string(),
        required.to_string(),
    ]);
    vec![t, t2, t3]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thm32_quick_valid() {
        let tables = exp_thm32(true);
        assert_eq!(tables.len(), 2);
        assert!(!tables[0].render().contains("false"));
        assert!(!tables[1].render().contains("false"));
    }
}
