//! Runs every experiment of the per-experiment index in order, printing
//! the tables EXPERIMENTS.md records. Pass `--quick` for a fast pass.
fn main() {
    let quick = splitting_bench::quick_flag();
    for (id, runner) in splitting_bench::all_experiments() {
        println!("========== experiment {id} ==========");
        let start = std::time::Instant::now();
        for t in runner(quick) {
            t.print();
        }
        println!("(experiment {id} took {:.1?})\n", start.elapsed());
    }
}
