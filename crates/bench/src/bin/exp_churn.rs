//! Experiment `churn` — incremental re-splitting of a held solution
//! under seeded edge-mutation streams versus re-solving the patched
//! instance from scratch, per churn style. `--quick` shrinks the
//! instance and stream; `--json <path>` additionally emits the
//! machine-readable `BENCH_churn.json` report.
fn main() {
    let quick = splitting_bench::quick_flag();
    let (tables, report) = splitting_bench::run_churn_perf(quick);
    for t in &tables {
        t.print();
    }
    if let Some(path) = splitting_bench::json_path_flag() {
        std::fs::write(&path, report.to_json()).expect("write --json output");
        eprintln!("wrote {path}");
    }
}
