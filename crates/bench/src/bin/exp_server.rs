//! Experiment `server` — sustained-load throughput, latency percentiles,
//! and queue depth of the `splitd` job-queue service, on the same
//! zero-round workload as experiment `api` plus mixed priority traffic.
//! `--quick` shrinks the load; `--json <path>` additionally emits the
//! machine-readable `BENCH_server.json` report.
fn main() {
    let quick = splitting_bench::quick_flag();
    let (tables, report) = splitting_bench::run_server_perf(quick);
    for t in &tables {
        t.print();
    }
    if let Some(path) = splitting_bench::json_path_flag() {
        std::fs::write(&path, report.to_json()).expect("write --json output");
        eprintln!("wrote {path}");
    }
}
