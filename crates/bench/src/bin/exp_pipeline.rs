//! Experiment `pipeline` — end-to-end benchmark of the theorem pipelines
//! (solver dispatch, multicolor, uniform splitting) and before/after
//! measurements of the derandomization engine. `--quick` shrinks the
//! instances; `--json <path>` additionally emits the machine-readable
//! `BENCH_pipeline.json` report.
fn main() {
    let quick = splitting_bench::quick_flag();
    let (tables, report) = splitting_bench::run_pipeline_perf(quick);
    for t in &tables {
        t.print();
    }
    if let Some(path) = splitting_bench::json_path_flag() {
        std::fs::write(&path, report.to_json()).expect("write --json output");
        eprintln!("wrote {path}");
    }
}
