//! Experiment `substrate` — before/after microbench of the flat-memory
//! graph core and the arena executor. `--quick` shrinks the instances;
//! `--json <path>` additionally emits the machine-readable
//! `BENCH_substrate.json` report.
fn main() {
    let quick = splitting_bench::quick_flag();
    let (tables, report) = splitting_bench::run_substrate_perf(quick);
    for t in &tables {
        t.print();
    }
    if let Some(path) = splitting_bench::json_path_flag() {
        std::fs::write(&path, report.to_json()).expect("write --json output");
        eprintln!("wrote {path}");
    }
}
