//! Experiment `abl_shatter` — see DESIGN.md §4 for the claim under test.
fn main() {
    let quick = splitting_bench::quick_flag();
    splitting_bench::run_experiment_main(splitting_bench::exp_abl_shatter(quick));
}
