//! Experiment `runtime` — see DESIGN.md §4 for the claim under test.
//! `--json <path>` additionally emits the result tables as JSON.
fn main() {
    let quick = splitting_bench::quick_flag();
    let tables = splitting_bench::exp_runtime(quick);
    if let Some(path) = splitting_bench::json_path_flag() {
        let mode = if quick { "quick" } else { "full" };
        std::fs::write(
            &path,
            splitting_bench::tables_to_json("runtime", mode, &tables),
        )
        .expect("write --json output");
        eprintln!("wrote {path}");
    }
    splitting_bench::run_experiment_main(tables);
}
