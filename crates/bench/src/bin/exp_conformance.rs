//! Experiment `conformance` — the family × group conformance matrix.
fn main() {
    let quick = splitting_bench::quick_flag();
    splitting_bench::run_experiment_main(splitting_bench::exp_conformance(quick));
}
