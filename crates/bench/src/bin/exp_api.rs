//! Experiment `api` — batch throughput of the unified request/solution
//! layer versus sequential single-call dispatch and the raw legacy
//! entrypoints. `--quick` shrinks the batches; `--json <path>`
//! additionally emits the machine-readable `BENCH_api.json` report.
fn main() {
    let quick = splitting_bench::quick_flag();
    let (tables, report) = splitting_bench::run_api_perf(quick);
    for t in &tables {
        t.print();
    }
    if let Some(path) = splitting_bench::json_path_flag() {
        std::fs::write(&path, report.to_json()).expect("write --json output");
        eprintln!("wrote {path}");
    }
}
