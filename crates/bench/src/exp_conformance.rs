//! Experiment `conformance` — the conformance matrix as a result table:
//! scenario families × entrypoint groups, each cell the number of
//! passed/failed checks. Green cells are the precondition every other
//! experiment's numbers rest on.

use crate::table::Table;
use conformance::{matrix, run_corpus, Group, Tier};

/// Runs the conformance corpus (quick or full tier) and renders the
/// family × group matrix plus a failure table (empty when green).
pub fn exp_conformance(quick: bool) -> Vec<Table> {
    let tier = if quick { Tier::Quick } else { Tier::Full };
    let report = run_corpus(tier);
    let mut headers: Vec<&str> = vec!["scenario"];
    let group_names: Vec<&'static str> = Group::ALL.iter().map(|g| g.name()).collect();
    headers.extend(group_names.iter().copied());
    headers.push("regimes");
    let mut t = Table::new("conformance matrix (checks passed per cell)", &headers);
    for row in matrix(&report) {
        let mut cells = vec![row.scenario.clone()];
        for (checks, fails) in row.cells {
            cells.push(match (checks, fails) {
                (0, _) => "-".into(),
                (n, 0) => format!("{n} ok"),
                (n, k) => format!("{k}/{n} FAIL"),
            });
        }
        cells.push(row.regimes.clone());
        t.row(cells);
    }
    let mut failures = Table::new(
        "conformance failures (replay selectors)",
        &["scenario", "group", "check", "detail"],
    );
    for f in report.failures() {
        failures.row(vec![
            f.scenario.clone(),
            f.group.name().to_string(),
            f.check.to_string(),
            f.detail.clone(),
        ]);
    }
    vec![t, failures]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conformance_matrix_is_green_and_covers_all_families() {
        let tables = exp_conformance(true);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].row_count(), conformance::FAMILY_COUNT);
        assert_eq!(tables[1].row_count(), 0, "quick tier must be green");
    }
}
