//! Experiment `server` — sustained-load throughput and latency of the
//! `splitd` job-queue service.
//!
//! Drives the same zero-round weak-splitting workload as experiment
//! `api` (the single-threaded `zero_round_batch` row of
//! `BENCH_api.json`) through the full service path — ingest, admission, priority queue,
//! persistent workers, ordered reporting — plus a mixed-traffic workload
//! blending zero-round requests with Section 4 reductions across all
//! three priority lanes.
//!
//! Each row records wall-clock throughput, per-request service latency
//! percentiles (queue wait + solve, from the frame timings the server
//! stamps), the queue's high-water depth, and the rejected count, for
//! two transports:
//!
//! * **inproc** — pre-parsed `Request`s via `Submitter::submit_request`,
//!   isolating the queue/worker/reporting machinery itself. This is the
//!   row the acceptance gate reads: its absolute zero-round throughput
//!   must stay within 10% of the single-threaded `zero_round_batch`
//!   figure committed in `BENCH_api.json`.
//! * **wire** — rendered JSON lines via `Submitter::submit_line`,
//!   additionally paying the full codec round trip (envelope scan on
//!   ingest, strict parse in the worker), reported honestly rather than
//!   hidden: on multi-kilobyte instances the parse dominates a
//!   zero-round solve.
//!
//! A `zero_round_degraded` row reruns the zero-round workload under
//! the seeded chaos layer (2% injected worker panics, 2% 1 ms stalls)
//! so the fault path's throughput cost stays on the record, and a
//! `zero_round_journaled` row reruns it with a write-ahead journal
//! under the default batch fsync policy, pricing the durability layer
//! (per-admission append + per-completion append) against the clean
//! in-proc figure.
//!
//! Two rows price the parse-light ingest work:
//!
//! * **`zero_round_wire_handle`** — the zero-round workload over the
//!   wire with every instance uploaded once and referenced by handle,
//!   so requests are a few hundred bytes and solves share the interned
//!   `Arc<Instance>`. The run asserts `parse_fallbacks == 0`.
//! * **`wire_fast_parse`** — a codec microbench over the exact edge
//!   array bytes the wire rows carry: `wall_ns` times the zero-copy
//!   scanner, `wall_ns_direct` the strict parser, so on this one row
//!   `vs_direct` reads as the scanner's speedup (> 1.0).
//!
//! Results feed `BENCH_server.json`.

use crate::json::esc;
use crate::table::{fnum, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use splitgraph::generators;
use splitting_api::{Problem, Request, Session};
use splitting_reductions as red;
use splitting_server::{json, wire, Admission, Priority, Server, ServerConfig};
use std::time::Instant;

/// One (workload, transport) measurement.
#[derive(Debug, Clone)]
pub struct ServerRecord {
    /// Workload name, e.g. `zero_round_sustained`.
    pub name: &'static str,
    /// `"inproc"` (pre-parsed requests) or `"wire"` (JSON lines).
    pub transport: &'static str,
    /// Requests pushed through the service.
    pub requests: usize,
    /// Persistent worker threads.
    pub workers: usize,
    /// Host cores at measurement time (see `ApiRecord`).
    pub host_parallelism: usize,
    /// Wall time from first submission to last in-order reply, ns.
    pub wall_ns: u128,
    /// Direct `Session::solve` wall time for the identical request
    /// stream, ns — the no-service baseline.
    pub wall_ns_direct: u128,
    /// Median per-request service latency (queue wait + solve), ns.
    pub p50_ns: u64,
    /// 95th-percentile service latency, ns.
    pub p95_ns: u64,
    /// 99th-percentile service latency, ns.
    pub p99_ns: u64,
    /// Deepest the job queue got during the run.
    pub queue_high_water: usize,
    /// Requests refused admission (0 under blocking backpressure).
    pub rejected: u64,
    /// Error frames received (0 outside degraded-mode rows, where
    /// injected worker panics come back as typed `internal-panic`
    /// frames and count against throughput honestly).
    pub errors: u64,
}

impl ServerRecord {
    /// Requests per second through the full service path.
    pub fn throughput_rps(&self) -> f64 {
        self.requests as f64 / (self.wall_ns.max(1) as f64 / 1e9)
    }

    /// Direct-dispatch requests per second on the same stream.
    pub fn direct_rps(&self) -> f64 {
        self.requests as f64 / (self.wall_ns_direct.max(1) as f64 / 1e9)
    }

    /// Service throughput as a fraction of direct dispatch (1.0 = the
    /// service machinery is free). Expect well below 1.0 even in-proc:
    /// the direct loop only solves, while every served request also
    /// pays payload rendering, frame assembly, timing stamps, and two
    /// cross-thread handoffs.
    pub fn vs_direct(&self) -> f64 {
        self.throughput_rps() / self.direct_rps().max(1e-9)
    }
}

/// A full service benchmark run.
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// `"quick"` or `"full"`.
    pub mode: &'static str,
    /// `std::thread::available_parallelism()` of the measuring host.
    pub host_parallelism: usize,
    /// All measurements.
    pub records: Vec<ServerRecord>,
}

impl ServerReport {
    /// Serializes the report for `BENCH_server.json`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\n  \"bench\": \"server\",\n  \"mode\": \"{}\",\n  \"host_parallelism\": {},\n  \"records\": [",
            esc(self.mode),
            self.host_parallelism
        ));
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"transport\": \"{}\", \"requests\": {}, \
                 \"workers\": {}, \"host_parallelism\": {}, \
                 \"wall_ns\": {}, \"wall_ns_direct\": {}, \
                 \"throughput_rps\": {:.1}, \"direct_rps\": {:.1}, \"vs_direct\": {:.3}, \
                 \"latency_p50_ns\": {}, \"latency_p95_ns\": {}, \"latency_p99_ns\": {}, \
                 \"queue_high_water\": {}, \"rejected\": {}, \"errors\": {}}}",
                esc(r.name),
                esc(r.transport),
                r.requests,
                r.workers,
                r.host_parallelism,
                r.wall_ns,
                r.wall_ns_direct,
                r.throughput_rps(),
                r.direct_rps(),
                r.vs_direct(),
                r.p50_ns,
                r.p95_ns,
                r.p99_ns,
                r.queue_high_water,
                r.rejected,
                r.errors
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Nearest-rank percentile over an already-sorted sample.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// The request pool one workload cycles over.
struct Pool {
    name: &'static str,
    requests: Vec<(Priority, Request)>,
}

/// The zero-round weak-splitting pool — identical instances to
/// experiment `api`'s `zero_round_batch`, so the two reports share a
/// baseline.
fn zero_round_pool(count: usize, nu: usize, d: usize) -> Pool {
    let requests = (0..count)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(0xA110 + i as u64);
            let b = generators::random_biregular(nu, nu, d, &mut rng).expect("feasible");
            (
                Priority::Normal,
                Request::new(Problem::weak_splitting(), b).seed(i as u64),
            )
        })
        .collect();
    Pool {
        name: "zero_round_sustained",
        requests,
    }
}

/// Mixed traffic: zero-round weak splitting interleaved with Section 4
/// reductions, spread across all three priority lanes.
fn mixed_pool(weak: usize, hosts: usize, n: usize, d: usize) -> Pool {
    let mut requests: Vec<(Priority, Request)> = Vec::new();
    for i in 0..weak {
        let mut rng = StdRng::seed_from_u64(0xA110 + i as u64);
        let b = generators::random_biregular(60, 60, 16, &mut rng).expect("feasible");
        requests.push((
            Priority::Normal,
            Request::new(Problem::weak_splitting(), b).seed(i as u64),
        ));
    }
    for i in 0..hosts {
        let mut rng = StdRng::seed_from_u64(0xB220 + i as u64);
        let g = generators::random_regular(n, d, &mut rng).expect("feasible");
        requests.push((
            Priority::High,
            Request::new(Problem::Mis { base_degree: None }, g.clone()).seed(i as u64),
        ));
        requests.push((
            Priority::Low,
            Request::new(
                Problem::EdgeColoring {
                    base_degree: Some(8),
                    engine: red::EdgeSplitEngine::Eulerian,
                },
                g,
            ),
        ));
    }
    Pool {
        name: "mixed_traffic",
        requests,
    }
}

/// Sorted per-request service latencies plus the run's wall time.
struct LoadOutcome {
    wall_ns: u128,
    latencies: Vec<u64>,
    replies: usize,
    queue_high_water: usize,
    rejected: u64,
    errors: u64,
}

/// How many requests the load generator keeps in flight. Below the
/// default queue capacity, so admission never blocks the generator and
/// the queue's high-water mark records the sustained depth honestly.
const INFLIGHT_WINDOW: usize = 128;

/// How long the load generator parks when no reply is ready. Long
/// enough that a single-core host spends its cycles in the worker (one
/// wake drains ~60 frames at zero-round service rates), short enough
/// that the in-flight window never fully empties.
const POLL_SLEEP: std::time::Duration = std::time::Duration::from_micros(700);

/// Pushes `total` requests from `pool` through one connection as an
/// event loop — a bounded in-flight window, new submissions interleaved
/// with non-blocking drains of the ordered reply stream — and collects
/// the server-stamped service latency of every reply.
///
/// The event-loop shape matters on purpose: it models a real sustained
/// client (requests materialize shortly before submission and stay
/// cache-warm, nobody parks on the reporting channel per frame) instead
/// of a one-shot backlog dump, which would measure DRAM misses over a
/// multi-megabyte request graveyard rather than the service.
fn drive(
    server: &Server,
    pool: &Pool,
    total: usize,
    transport: &str,
    allow_errors: bool,
) -> LoadOutcome {
    let lines: Vec<String> = match transport {
        "wire" => pool
            .requests
            .iter()
            .map(|(p, r)| wire::render_request(pool.name, *p, r))
            .collect(),
        // handle-form rendering assumes the caller already uploaded
        // every pool instance (the handle is derived from content, so
        // no upload round trip is needed here)
        "wire-handle" => pool
            .requests
            .iter()
            .map(|(p, r)| {
                let handle = wire::render_handle(wire::instance_fingerprint(r.instance()));
                wire::render_request_with_handle(pool.name, *p, &handle, r)
            })
            .collect(),
        _ => Vec::new(),
    };

    let (tx, mut rx) = server.connect().split();
    let mut tx = Some(tx);
    let mut submitted = 0usize;
    let mut frames: Vec<String> = Vec::with_capacity(total);
    let t0 = Instant::now();
    loop {
        while submitted < total && submitted - frames.len() < INFLIGHT_WINDOW {
            let i = submitted % pool.requests.len();
            let sub = tx.as_mut().expect("submitter live until total");
            if !lines.is_empty() {
                sub.submit_line(&lines[i]);
            } else {
                let (priority, request) = &pool.requests[i];
                sub.submit_request(pool.name, *priority, request.clone());
            }
            submitted += 1;
        }
        if submitted == total {
            if let Some(tx) = tx.take() {
                tx.finish();
            }
        }
        match rx.try_recv() {
            splitting_server::Polled::Frame(frame) => frames.push(frame),
            // nothing ready: park instead of spinning — on a shared
            // core, burning cycles here would slow the workers
            splitting_server::Polled::Pending => std::thread::sleep(POLL_SLEEP),
            splitting_server::Polled::Finished => break,
        }
    }
    let wall_ns = t0.elapsed().as_nanos();
    let replies = frames.len();
    let mut latencies = Vec::with_capacity(total);
    let mut errors = 0u64;
    for frame in &frames {
        let reply = wire::split_reply(frame).expect("well-formed reply frame");
        if reply.frame_type == "error" {
            assert!(allow_errors, "workload request failed under load: {frame}");
            errors += 1;
        } else {
            assert_eq!(
                reply.frame_type, "solution",
                "unexpected frame under load: {frame}"
            );
        }
        if let Some(t) = reply.timing {
            latencies.push(t.queued_ns + t.solve_ns);
        }
    }
    let stats = server.stats();
    latencies.sort_unstable();
    LoadOutcome {
        wall_ns,
        latencies,
        replies,
        queue_high_water: stats.queue_high_water,
        rejected: stats.rejected,
        errors,
    }
}

/// Runs the service benchmark; returns printable tables plus the JSON
/// report.
pub fn run_server_perf(quick: bool) -> (Vec<Table>, ServerReport) {
    let mode = if quick { "quick" } else { "full" };
    let host_parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let (zero_pool, zero_total, mixed_weak, mixed_hosts, mixed_total) = if quick {
        (16, 4_000, 16, 3, 300)
    } else {
        (64, 12_000, 32, 6, 1_200)
    };

    let pools = [
        (zero_round_pool(zero_pool, 60, 16), zero_total),
        (mixed_pool(mixed_weak, mixed_hosts, 64, 8), mixed_total),
    ];

    let session = Session::with_threads(1);
    let mut records = Vec::new();
    let mut zero_direct_ns = 0u128;
    for (pool, total) in &pools {
        // the no-service baseline on the identical stream (warm, then
        // timed), solving straight through the API
        for (_, r) in &pool.requests {
            std::hint::black_box(session.solve(r).expect("pool solves").output.len());
        }
        let t0 = Instant::now();
        for i in 0..*total {
            let (_, r) = &pool.requests[i % pool.requests.len()];
            std::hint::black_box(session.solve(r).expect("pool solves").output.len());
        }
        let wall_ns_direct = t0.elapsed().as_nanos();
        if pool.name == "zero_round_sustained" {
            zero_direct_ns = wall_ns_direct;
        }

        for transport in ["inproc", "wire"] {
            // a fresh single-worker server per row: blocking admission
            // gives sustained backpressure instead of load shedding, so
            // every request is served and the queue saturates honestly
            let server = Server::start(ServerConfig {
                workers: 1,
                admission: Admission::Block,
                ..ServerConfig::default()
            });
            let outcome = drive(&server, pool, *total, transport, false);
            assert_eq!(outcome.replies, *total, "one reply per request");
            if transport == "wire" {
                // the renderer emits canonical encodings, so every edge
                // parse must ride the zero-copy fast path
                assert_eq!(
                    server.stats().parse_fallbacks,
                    0,
                    "canonical wire encodings fell back to the strict parser"
                );
            }
            records.push(ServerRecord {
                name: pool.name,
                transport: if transport == "wire" {
                    "wire"
                } else {
                    "inproc"
                },
                requests: *total,
                workers: server.config().workers,
                host_parallelism,
                wall_ns: outcome.wall_ns,
                wall_ns_direct,
                p50_ns: percentile(&outcome.latencies, 0.50),
                p95_ns: percentile(&outcome.latencies, 0.95),
                p99_ns: percentile(&outcome.latencies, 0.99),
                queue_high_water: outcome.queue_high_water,
                rejected: outcome.rejected,
                errors: outcome.errors,
            });
            server.shutdown();
        }
    }

    // Handle mode: the zero-round workload over the wire with every
    // instance uploaded once and the sustained stream referencing it by
    // handle. Requests shrink from multi-kilobyte instance encodings to
    // a few hundred bytes of envelope, and each solve shares the
    // interned Arc<Instance> — this is the row that should close most
    // of the wire-vs-inproc gap.
    {
        let (pool, total) = &pools[0];
        let server = Server::start(ServerConfig {
            workers: 1,
            admission: Admission::Block,
            ..ServerConfig::default()
        });
        let (mut utx, mut urx) = server.connect().split();
        for (_, r) in &pool.requests {
            utx.submit_line(&wire::render_upload("upload", r.instance()));
        }
        utx.finish();
        let mut uploads = 0;
        while let Some(frame) = urx.recv() {
            assert!(
                frame.contains("\"type\":\"uploaded\""),
                "upload refused: {frame}"
            );
            uploads += 1;
        }
        assert_eq!(uploads, pool.requests.len(), "every instance uploaded");
        let outcome = drive(&server, pool, *total, "wire-handle", false);
        assert_eq!(outcome.replies, *total, "one reply per handle request");
        let stats = server.stats();
        assert_eq!(
            stats.parse_fallbacks, 0,
            "handle-path envelopes must never hit the strict edge parser"
        );
        assert_eq!(
            stats.handles_held as usize,
            pool.requests.len(),
            "interned instances survive the run"
        );
        records.push(ServerRecord {
            name: "zero_round_wire_handle",
            transport: "wire-handle",
            requests: *total,
            workers: server.config().workers,
            host_parallelism,
            wall_ns: outcome.wall_ns,
            wall_ns_direct: zero_direct_ns,
            p50_ns: percentile(&outcome.latencies, 0.50),
            p95_ns: percentile(&outcome.latencies, 0.95),
            p99_ns: percentile(&outcome.latencies, 0.99),
            queue_high_water: outcome.queue_high_water,
            rejected: outcome.rejected,
            errors: outcome.errors,
        });
        server.shutdown();
    }

    // Codec microbench: the zero-copy edge scanner against the strict
    // parser over the exact edge-array bytes the wire rows carry. No
    // server in the loop — this row isolates the tentpole parse win, so
    // its `vs_direct` is the scanner's speedup over the strict parser.
    {
        let (pool, _) = &pools[0];
        let lines: Vec<String> = pool
            .requests
            .iter()
            .map(|(p, r)| wire::render_request(pool.name, *p, r))
            .collect();
        let edges: Vec<&str> = lines
            .iter()
            .map(|line| {
                let fields = json::scan_top_level(line).expect("canonical frame");
                let instance = fields
                    .iter()
                    .find(|(k, _)| *k == "instance")
                    .expect("frame carries an instance")
                    .1;
                json::scan_top_level(instance)
                    .expect("canonical instance")
                    .iter()
                    .find(|(k, _)| *k == "edges")
                    .expect("instance carries edges")
                    .1
            })
            .collect();
        let iters = if quick { 2_000 } else { 10_000 };
        // warm both paths once, then time strict (baseline) and scanner
        for e in &edges {
            std::hint::black_box(json::parse_edge_pairs(e).expect("valid").len());
            std::hint::black_box(json::scan_edge_pairs(e).expect("valid").0.len());
        }
        let t0 = Instant::now();
        for i in 0..iters {
            let e = edges[i % edges.len()];
            std::hint::black_box(json::parse_edge_pairs(e).expect("valid").len());
        }
        let wall_ns_direct = t0.elapsed().as_nanos();
        let t0 = Instant::now();
        for i in 0..iters {
            let e = edges[i % edges.len()];
            let (pairs, fast) = json::scan_edge_pairs(e).expect("valid");
            assert!(fast, "canonical edges must ride the fast path");
            std::hint::black_box(pairs.len());
        }
        let wall_ns = t0.elapsed().as_nanos();
        records.push(ServerRecord {
            name: "wire_fast_parse",
            transport: "codec",
            requests: iters,
            workers: 0,
            host_parallelism,
            wall_ns,
            wall_ns_direct,
            p50_ns: 0,
            p95_ns: 0,
            p99_ns: 0,
            queue_high_water: 0,
            rejected: 0,
            errors: 0,
        });
    }

    // Degraded mode: the zero-round workload again, but with the seeded
    // chaos layer injecting worker panics and 1 ms stalls at 2% each.
    // Throughput and tail latency under faults land in the report next
    // to the clean rows, so a regression in fault-path overhead (panic
    // capture, typed error rendering, token bookkeeping) is visible in
    // the same place as a regression in the happy path.
    {
        let (pool, total) = &pools[0];
        let server = Server::start(ServerConfig {
            workers: 1,
            admission: Admission::Block,
            chaos: Some(splitting_server::ChaosConfig {
                seed: 0xDE9,
                worker_panic: 0.02,
                worker_stall: 0.02,
                stall_ms: 1,
                torn_frame: 0.0,
                drop_connection: 0.0,
                process_kill: 0.0,
            }),
            ..ServerConfig::default()
        });
        let outcome = drive(&server, pool, *total, "inproc", true);
        assert_eq!(
            outcome.replies, *total,
            "degraded mode still answers every request"
        );
        assert!(outcome.errors > 0, "the 2% panic schedule must fire");
        records.push(ServerRecord {
            name: "zero_round_degraded",
            transport: "inproc",
            requests: *total,
            workers: server.config().workers,
            host_parallelism,
            wall_ns: outcome.wall_ns,
            wall_ns_direct: zero_direct_ns,
            p50_ns: percentile(&outcome.latencies, 0.50),
            p95_ns: percentile(&outcome.latencies, 0.95),
            p99_ns: percentile(&outcome.latencies, 0.99),
            queue_high_water: outcome.queue_high_water,
            rejected: outcome.rejected,
            errors: outcome.errors,
        });
        server.shutdown();
    }

    // Journaled mode: the zero-round workload once more with the
    // write-ahead journal enabled under its default batch fsync policy
    // — the acceptance gate keeps this row within 20% of the clean
    // in-proc figure, pinning the durability layer's per-request cost
    // (a structural fingerprint plus two small serialized appends;
    // payload interning keeps the full wire line off the steady-state
    // path) where a regression is visible.
    {
        let (pool, total) = &pools[0];
        let path = std::env::temp_dir().join(format!(
            "splitd-bench-journal-{}.journal",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let journal = std::sync::Arc::new(
            splitting_server::Journal::open(&path, splitting_server::FsyncPolicy::Batch)
                .expect("bench journal opens"),
        );
        let server = Server::start(ServerConfig {
            workers: 1,
            admission: Admission::Block,
            journal: Some(std::sync::Arc::clone(&journal)),
            ..ServerConfig::default()
        });
        let outcome = drive(&server, pool, *total, "inproc", false);
        assert_eq!(
            outcome.replies, *total,
            "journaled mode still answers every request"
        );
        let jstats = journal.stats();
        assert_eq!(
            (jstats.appended, jstats.completed),
            (*total as u64, *total as u64),
            "every request journaled and completed"
        );
        records.push(ServerRecord {
            name: "zero_round_journaled",
            transport: "inproc",
            requests: *total,
            workers: server.config().workers,
            host_parallelism,
            wall_ns: outcome.wall_ns,
            wall_ns_direct: zero_direct_ns,
            p50_ns: percentile(&outcome.latencies, 0.50),
            p95_ns: percentile(&outcome.latencies, 0.95),
            p99_ns: percentile(&outcome.latencies, 0.99),
            queue_high_water: outcome.queue_high_water,
            rejected: outcome.rejected,
            errors: outcome.errors,
        });
        server.shutdown();
        drop(journal);
        let _ = std::fs::remove_file(&path);
    }

    let mut table = Table::new(
        format!("server ({mode}): sustained load through the splitd service path"),
        &[
            "workload",
            "transport",
            "reqs",
            "workers",
            "wall ms",
            "req/s",
            "vs direct",
            "p50 µs",
            "p95 µs",
            "p99 µs",
            "q-high",
            "rejected",
            "errors",
        ],
    );
    for r in &records {
        table.row(vec![
            r.name.to_string(),
            r.transport.to_string(),
            r.requests.to_string(),
            r.workers.to_string(),
            fnum(r.wall_ns as f64 / 1e6),
            fnum(r.throughput_rps()),
            format!("{:.3}×", r.vs_direct()),
            fnum(r.p50_ns as f64 / 1e3),
            fnum(r.p95_ns as f64 / 1e3),
            fnum(r.p99_ns as f64 / 1e3),
            r.queue_high_water.to_string(),
            r.rejected.to_string(),
            r.errors.to_string(),
        ]);
    }
    let report = ServerReport {
        mode,
        host_parallelism,
        records,
    };
    (vec![table], report)
}
