//! Experiments for Section 5: high-girth instances (`lem51`, `thm52`).

use crate::table::{fnum, Table};
use splitgraph::{bipartite_girth, checks, generators};
use splitting_core as core;

/// `lem51` — Lemma 5.1: residual `δ_H ≥ 6·r_H` frequency on explicit
/// girth-12 instances.
pub fn exp_lem51(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "lem51 — Lemma 5.1: δ_H ≥ 6·r_H after shattering (girth ≥ 10 instances)",
        &[
            "q",
            "n_B",
            "δ",
            "girth",
            "trials",
            "holds",
            "mean unsat",
            "min δ_H seen",
            "max r_H seen",
        ],
    );
    let qs: &[u64] = if quick { &[13, 23] } else { &[13, 23, 31, 43] };
    let trials = if quick { 10 } else { 30 };
    for &q in qs {
        let (b, _) = generators::projective_girth12_bipartite(q).expect("prime q");
        let girth = if quick && q > 13 {
            "≥10 (by construction)".to_string()
        } else {
            bipartite_girth(&b).map_or("∞".into(), |g| g.to_string())
        };
        let mut holds = 0usize;
        let mut unsat_total = 0usize;
        let mut min_dh = usize::MAX;
        let mut max_rh = 0usize;
        for seed in 0..trials {
            let s = core::lemma51_stats(&b, seed as u64);
            if s.holds {
                holds += 1;
            }
            unsat_total += s.unsatisfied;
            if let Some(dh) = s.delta_h {
                min_dh = min_dh.min(dh);
            }
            max_rh = max_rh.max(s.rank_h);
        }
        t.row(vec![
            q.to_string(),
            b.node_count().to_string(),
            b.min_left_degree().to_string(),
            girth,
            trials.to_string(),
            format!("{holds}/{trials}"),
            fnum(unsat_total as f64 / trials as f64),
            if min_dh == usize::MAX {
                "—".into()
            } else {
                min_dh.to_string()
            },
            max_rh.to_string(),
        ]);
    }
    vec![t]
}

/// `thm52` — Theorems 5.2/5.3: rounds vs `Δ²r² + polylog` on girth-12
/// instances.
pub fn exp_thm52(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "thm52 — Theorems 5.2/5.3: high-girth pipeline rounds vs Δ²r²",
        &[
            "q",
            "n_B",
            "Δ·r",
            "(Δr)²",
            "det rounds",
            "rand rounds",
            "det valid",
            "rand valid",
        ],
    );
    // q = 13 (δ = 14) sits below the "sufficiently large constants" of
    // Lemma 5.1 — see the lem51 table — so the pipeline starts at q = 23
    let qs: &[u64] = if quick { &[23] } else { &[23, 31, 43] };
    for &q in qs {
        let (b, _) = generators::projective_girth12_bipartite(q).expect("prime q");
        let det = core::theorem52(&b, 3, false, core::GirthScheduling::Reference)
            .expect("pipeline succeeds");
        let rand = core::theorem53(&b, 5, false).expect("pipeline succeeds");
        let dr = b.max_left_degree() * b.rank();
        t.row(vec![
            q.to_string(),
            b.node_count().to_string(),
            dr.to_string(),
            (dr * dr).to_string(),
            fnum(det.ledger.total()),
            fnum(rand.ledger.total()),
            checks::is_weak_splitting(&b, &det.colors, 0).to_string(),
            checks::is_weak_splitting(&b, &rand.colors, 0).to_string(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lem51_quick_mostly_holds() {
        let tables = exp_lem51(true);
        let s = tables[0].render();
        // at q = 23 the property should hold in almost every trial
        assert!(
            s.contains("10/10") || s.contains("9/10") || s.contains("8/10"),
            "{s}"
        );
    }

    #[test]
    fn thm52_quick_valid() {
        let tables = exp_thm52(true);
        assert!(!tables[0].render().contains("false"));
    }
}
