//! Plain-text table rendering for experiment outputs.

use std::fmt::Write as _;

/// A printable experiment table: a title, column headers, and rows.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells are any displayable values).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                let pad = w - cell.chars().count();
                let _ = write!(s, " {}{} |", cell, " ".repeat(pad));
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats a float compactly for table cells.
pub fn fnum(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else if x.abs() >= 0.01 {
        format!("{x:.3}")
    } else {
        format!("{x:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["short".into(), "1".into()]);
        t.row(vec!["a-much-longer-name".into(), "23456".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("| name"));
        assert!(s.lines().count() >= 5);
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.title(), "demo");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(12345.6), "12346");
        assert_eq!(fnum(42.26), "42.3");
        assert_eq!(fnum(1.5), "1.500");
        assert_eq!(fnum(0.0001), "1.00e-4");
    }
}
