//! Experiment `churn` — incremental re-splitting under edge mutations:
//! the cost of one `HeldSolution::apply` update versus re-solving the
//! patched instance from scratch.
//!
//! Per churn style (grow / shrink / rewire), the bench holds a solved
//! weak-splitting instance and streams seeded edge-delta batches into
//! it. Every timed update is paired with a from-scratch
//! `Session::solve` of the identical patched instance, so the speedup
//! column compares two certified solutions of the same graph. Repaired
//! certificates are verified **in the loop**: `certificate.holds()`
//! inside the timed region, plus an untimed full `reverify` against the
//! patched instance after every update.
//!
//! The stream is preceded by warm-up updates (steady-state measurement:
//! the very first delete-containing update repairs from the pristine
//! derandomized coloring and may legitimately fall back to a full
//! re-solve; the route counters in the record report whatever happened
//! inside the timed window). Results feed `BENCH_churn.json`.

use crate::json::esc;
use crate::table::{fnum, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use splitgraph::delta::{random_delta, ChurnStyle};
use splitgraph::generators;
use splitting_api::{Instance, Problem, Request, Session};
use std::time::Instant;

/// One churn-style measurement over a mutation stream.
#[derive(Debug, Clone)]
pub struct ChurnRecord {
    /// Churn style (`grow` / `shrink` / `rewire`).
    pub style: &'static str,
    /// Constraints (left nodes).
    pub left: usize,
    /// Variables (right nodes).
    pub right: usize,
    /// Left degree of the biregular instance.
    pub degree: usize,
    /// Edge count at the start of the timed window.
    pub edges: usize,
    /// Timed updates in the stream.
    pub updates: usize,
    /// Edits per update batch.
    pub edits_per_update: usize,
    /// Churn rate: edits per update as a percentage of constraints.
    pub churn_pct: f64,
    /// Wall time of the initial full solve (the `hold`), nanoseconds.
    pub wall_ns_first_solve: u128,
    /// Total wall time of the timed incremental updates, nanoseconds.
    pub wall_ns_update_total: u128,
    /// Total wall time of the paired from-scratch re-solves, nanoseconds.
    pub wall_ns_scratch_total: u128,
    /// Updates answered by the incremental repair route in the window.
    pub repairs: u64,
    /// Updates that fell back to a full re-solve in the window.
    pub full_resolves: u64,
    /// Mean refix fraction of the repairs in the window.
    pub mean_refix_fraction: f64,
    /// Certificates verified in-loop (one `holds` + one `reverify` per
    /// update on the incremental side; the scratch side verifies
    /// internally before returning).
    pub certificates_verified: usize,
}

impl ChurnRecord {
    /// Mean incremental update latency, nanoseconds.
    pub fn update_ns(&self) -> u128 {
        self.wall_ns_update_total / self.updates.max(1) as u128
    }

    /// Mean from-scratch re-solve latency, nanoseconds.
    pub fn scratch_ns(&self) -> u128 {
        self.wall_ns_scratch_total / self.updates.max(1) as u128
    }

    /// Update-vs-rescratch speedup (mean scratch / mean update).
    pub fn speedup(&self) -> f64 {
        self.wall_ns_scratch_total as f64 / self.wall_ns_update_total.max(1) as f64
    }
}

/// A full churn benchmark run.
#[derive(Debug, Clone)]
pub struct ChurnReport {
    /// `"quick"` or `"full"`.
    pub mode: &'static str,
    /// `std::thread::available_parallelism()` of the measuring host
    /// (shared report envelope; both sides of the comparison run on a
    /// single-threaded session regardless).
    pub host_parallelism: usize,
    /// All measurements, one per churn style.
    pub records: Vec<ChurnRecord>,
}

impl ChurnReport {
    /// Serializes the report for `BENCH_churn.json`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\n  \"bench\": \"churn\",\n  \"mode\": \"{}\",\n  \"host_parallelism\": {},\n  \"records\": [",
            esc(self.mode),
            self.host_parallelism
        ));
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"style\": \"{}\", \"left\": {}, \"right\": {}, \"degree\": {}, \
                 \"edges\": {}, \"updates\": {}, \"edits_per_update\": {}, \
                 \"churn_pct\": {:.4}, \"wall_ns_first_solve\": {}, \
                 \"wall_ns_update_total\": {}, \"wall_ns_scratch_total\": {}, \
                 \"update_ns\": {}, \"scratch_ns\": {}, \"speedup\": {:.2}, \
                 \"repairs\": {}, \"full_resolves\": {}, \"mean_refix_fraction\": {:.4}, \
                 \"certificates_verified\": {}}}",
                esc(r.style),
                r.left,
                r.right,
                r.degree,
                r.edges,
                r.updates,
                r.edits_per_update,
                r.churn_pct,
                r.wall_ns_first_solve,
                r.wall_ns_update_total,
                r.wall_ns_scratch_total,
                r.update_ns(),
                r.scratch_ns(),
                r.speedup(),
                r.repairs,
                r.full_resolves,
                r.mean_refix_fraction,
                r.certificates_verified,
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Runs the churn benchmark; returns printable tables plus the JSON
/// report.
pub fn run_churn_perf(quick: bool) -> (Vec<Table>, ChurnReport) {
    let mode = if quick { "quick" } else { "full" };
    // full: n = 120 000 nodes, 2.4 M edges, 150-edit batches (0.25 % of
    // constraints per update, ≪ 1 % churn); δ = 40 keeps 2·log₂ n ≈ 33.7
    // at a margin so deletes cannot exit the Theorem 2.5 regime
    let (l, d, edits, warmup, updates) = if quick {
        (10_000, 36, 40, 2, 4)
    } else {
        (60_000, 40, 150, 2, 12)
    };
    let session = Session::with_threads(1);
    let mut records = Vec::new();
    for style in ChurnStyle::ALL {
        let mut rng = StdRng::seed_from_u64(0xC0DE);
        let b = generators::random_biregular(l, l, d, &mut rng).expect("feasible biregular");
        let request = Request::new(Problem::weak_splitting(), b)
            .deterministic()
            .seed(1);
        let t0 = Instant::now();
        let mut held = session.hold(&request).expect("regime is covered");
        let wall_ns_first_solve = t0.elapsed().as_nanos();
        for _ in 0..warmup {
            let delta = random_delta(held.instance(), style, edits, &mut rng);
            held.apply(&delta).expect("warm-up update solves");
        }
        let before = *held.stats();
        let edges = held.instance().edge_count();
        let mut wall_ns_update_total = 0u128;
        let mut wall_ns_scratch_total = 0u128;
        let mut certificates_verified = 0usize;
        for _ in 0..updates {
            let delta = random_delta(held.instance(), style, edits, &mut rng);
            // incremental side: apply + certificate check, timed
            let t0 = Instant::now();
            let repaired = held.apply(&delta).expect("update solves");
            assert!(repaired.certificate.holds(), "repaired certificate holds");
            wall_ns_update_total += t0.elapsed().as_nanos();
            certificates_verified += 1;
            // full re-verification against the patched instance, in-loop
            // but untimed (the scratch side verifies internally too, so
            // the timed comparison stays one solve vs one update)
            let patched = Instance::Bipartite(held.instance().clone());
            assert!(repaired.reverify(&patched), "repair re-verifies");
            certificates_verified += 1;
            // scratch side: solve the identical patched instance
            let scratch_request = Request::new(Problem::weak_splitting(), held.instance().clone())
                .deterministic()
                .seed(1);
            let t0 = Instant::now();
            let scratch = session.solve(&scratch_request).expect("scratch solves");
            wall_ns_scratch_total += t0.elapsed().as_nanos();
            std::hint::black_box(scratch.output.len());
        }
        let after = *held.stats();
        let repairs = after.repairs - before.repairs;
        records.push(ChurnRecord {
            style: style.name(),
            left: l,
            right: l,
            degree: d,
            edges,
            updates,
            edits_per_update: edits,
            churn_pct: 100.0 * edits as f64 / l as f64,
            wall_ns_first_solve,
            wall_ns_update_total,
            wall_ns_scratch_total,
            repairs,
            full_resolves: after.full_resolves - before.full_resolves,
            mean_refix_fraction: if repairs > 0 {
                (after.mean_refix_fraction() * after.repairs as f64
                    - before.mean_refix_fraction() * before.repairs as f64)
                    / repairs as f64
            } else {
                0.0
            },
            certificates_verified,
        });
    }

    let mut table = Table::new(
        format!("churn ({mode}): incremental repair vs from-scratch re-solve"),
        &[
            "style",
            "n",
            "edges",
            "edits/update",
            "churn %",
            "first solve ms",
            "update ms",
            "scratch ms",
            "speedup",
            "repairs",
            "full resolves",
            "mean refix",
        ],
    );
    for r in &records {
        table.row(vec![
            r.style.to_string(),
            (r.left + r.right).to_string(),
            r.edges.to_string(),
            r.edits_per_update.to_string(),
            format!("{:.3}", r.churn_pct),
            fnum(r.wall_ns_first_solve as f64 / 1e6),
            fnum(r.update_ns() as f64 / 1e6),
            fnum(r.scratch_ns() as f64 / 1e6),
            format!("{:.1}×", r.speedup()),
            r.repairs.to_string(),
            r.full_resolves.to_string(),
            format!("{:.3}", r.mean_refix_fraction),
        ]);
    }
    let report = ChurnReport {
        mode,
        host_parallelism: std::thread::available_parallelism().map_or(1, |p| p.get()),
        records,
    };
    (vec![table], report)
}
