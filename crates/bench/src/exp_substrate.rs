//! Substrate experiments: the §1.1 edge-splitting motivation
//! (`edge_split`) and the LOCAL-simulator metrics (`runtime`).

use crate::table::{fnum, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use splitgraph::{checks, generators, right_square};
use splitting_reductions as red;

/// `edge_split` — the introduction's edge-coloring pipeline: recursive
/// edge splitting → `2Δ(1+o(1))` colors (\[GS17\] shape).
pub fn exp_edge_split(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "edge_split — §1.1 motivation: 2Δ(1+o(1)) edge coloring via edge splitting",
        &[
            "n",
            "Δ",
            "engine",
            "levels",
            "base Δ*",
            "palette",
            "ratio /2Δ",
            "proper",
        ],
    );
    let sweep: &[(usize, usize)] = if quick {
        &[(128, 32)]
    } else {
        &[(128, 32), (256, 64), (512, 128)]
    };
    for (i, &(n, d)) in sweep.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(3000 + i as u64);
        let g = generators::random_regular(n, d, &mut rng).expect("feasible");
        for engine in [red::EdgeSplitEngine::Eulerian, red::EdgeSplitEngine::Walk] {
            let (colors, report, _) =
                red::edge_coloring_via_splitting(&g, 8, engine).expect("non-empty");
            t.row(vec![
                n.to_string(),
                d.to_string(),
                format!("{engine:?}"),
                report.levels.to_string(),
                report.base_degree.to_string(),
                report.palette.to_string(),
                fnum(report.ratio),
                checks::is_proper_edge_coloring(&g, &colors).to_string(),
            ]);
        }
    }
    vec![t]
}

/// `runtime` — simulator metrics: measured rounds and messages of the
/// genuinely distributed primitives.
pub fn exp_runtime(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "runtime — LOCAL simulator metrics (measured rounds / messages)",
        &["primitive", "instance", "rounds", "messages", "valid"],
    );
    let sizes: &[usize] = if quick { &[256] } else { &[256, 1024, 4096] };
    for (i, &n) in sizes.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(3100 + i as u64);
        // Linial + KW on a bounded-degree graph
        let g = generators::random_regular(n, 6, &mut rng).expect("feasible");
        let ids: Vec<u64> = (0..n as u64).collect();
        let lin = local_coloring::linial_color(&g, &ids, n as u64);
        t.row(vec![
            "linial O(Δ²)-coloring".into(),
            format!("{n}-node 6-regular"),
            lin.rounds.to_string(),
            lin.messages.to_string(),
            checks::is_proper_coloring(&g, &lin.colors).to_string(),
        ]);
        let kw = local_coloring::kw_reduce(&g, &lin.colors, lin.palette);
        t.row(vec![
            "KW reduction → Δ+1".into(),
            format!("{n}-node 6-regular"),
            kw.rounds.to_string(),
            kw.messages.to_string(),
            checks::is_proper_coloring(&g, &kw.colors).to_string(),
        ]);
        // shattering on a bipartite instance
        let b = generators::random_biregular(n / 2, n, 16, &mut rng).expect("feasible");
        let sh = splitting_core::shatter(&b, 5);
        t.row(vec![
            "shattering".into(),
            format!("{}×{} d16", n / 2, n),
            sh.rounds.to_string(),
            sh.messages.to_string(),
            "n/a".into(),
        ]);
    }

    // the message-passing conditional-expectation fixer, cross-validated
    let mut t2 = Table::new(
        "runtime — distributed conditional-expectation fixer vs central compilation",
        &[
            "|U|×|V|",
            "palette classes",
            "rounds (= 2·C)",
            "identical to central",
        ],
    );
    let mut rng = StdRng::seed_from_u64(3200);
    let b = generators::random_left_regular(60, 120, 16, &mut rng).expect("feasible");
    let sq = right_square(&b);
    let order: Vec<usize> = (0..sq.node_count()).collect();
    let sched = local_coloring::greedy_sequential(&sq, &order);
    let palette = sched.iter().copied().max().map_or(1, |c| c + 1);
    let central = derand::phased_fix(
        &b,
        derand::ColoringEstimator::monochromatic(&b),
        &sched,
        palette,
    );
    let distributed = derand::distributed_phased_fix(
        &b,
        derand::ColoringEstimator::monochromatic(&b),
        &sched,
        palette,
    );
    t2.row(vec![
        "60×120 d16".into(),
        palette.to_string(),
        distributed.rounds.to_string(),
        (central.colors == distributed.colors).to_string(),
    ]);
    vec![t, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_split_quick_proper() {
        let tables = exp_edge_split(true);
        assert!(!tables[0].render().contains("| false"));
    }

    #[test]
    fn runtime_quick_valid() {
        let tables = exp_runtime(true);
        assert!(!tables[0].render().contains("| false"));
        assert!(tables[1].render().contains("true"));
    }
}
