//! Experiments for Section 4: coloring and MIS via splitting
//! (`lem41`, `lem42`).

use crate::table::{fnum, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use splitgraph::math::log2;
use splitgraph::{checks, generators};
use splitting_reductions as red;

/// `lem41` — Lemma 4.1: measured `(1+o(1))` palette factor across Δ.
pub fn exp_lem41(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "lem41 — Lemma 4.1: (1+o(1))·Δ coloring via recursive splitting",
        &[
            "n",
            "Δ",
            "levels",
            "base Δ*",
            "palette",
            "ratio palette/(Δ+1)",
            "proper",
        ],
    );
    let sweep: &[(usize, usize)] = if quick {
        &[(512, 64), (2048, 512)]
    } else {
        &[(512, 64), (1024, 128), (2048, 512), (4096, 1024)]
    };
    for (i, &(n, d)) in sweep.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(1200 + i as u64);
        let g = generators::random_regular(n, d, &mut rng).expect("feasible");
        let base = 4 * (log2(n).ceil() as usize);
        let (colors, report, _ledger) =
            red::delta_coloring_via_splitting(&g, base, Some(0.35)).expect("feasible eps");
        t.row(vec![
            n.to_string(),
            d.to_string(),
            report.levels.to_string(),
            report.base_degree.to_string(),
            report.palette.to_string(),
            fnum(report.ratio),
            checks::is_proper_coloring(&g, &colors).to_string(),
        ]);
    }
    vec![t]
}

/// `lem42` — Lemma 4.2: MIS via heavy-node elimination; Lemma 4.3/4.4
/// quantities.
pub fn exp_lem42(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "lem42 — Lemma 4.2: MIS via heavy-node elimination",
        &[
            "n",
            "Δ",
            "steps",
            "elim iters",
            "splittings",
            "MIS size",
            "n/(Δ+1) bound",
            "valid",
        ],
    );
    let sweep: &[(usize, usize)] = if quick {
        &[(300, 32), (256, 64)]
    } else {
        &[(300, 32), (256, 64), (1024, 64), (2048, 128)]
    };
    for (i, &(n, d)) in sweep.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(1300 + i as u64);
        let g = generators::random_regular(n, d, &mut rng).expect("feasible");
        let base = 2 * (log2(n).ceil() as usize);
        let (mis, report, _ledger) = red::mis_via_splitting(&g, base, 5 + i as u64);
        let size = mis.iter().filter(|&&x| x).count();
        t.row(vec![
            n.to_string(),
            d.to_string(),
            report.steps.to_string(),
            report.elimination_iterations.to_string(),
            report.splittings.to_string(),
            size.to_string(),
            (n / (d + 1)).to_string(),
            checks::is_mis(&g, &mis).to_string(),
        ]);
    }

    let mut t2 = Table::new(
        "lem42 — uniform splitting oracle quality (feasible ε vs degree)",
        &["n", "degree", "certified ε", "valid (derandomized)"],
    );
    let mut rng = StdRng::seed_from_u64(1400);
    for &d in if quick {
        &[48usize, 96][..]
    } else {
        &[48usize, 96, 192, 384][..]
    } {
        let g = generators::random_regular(512.max(2 * d), d, &mut rng).expect("feasible");
        let eps = red::feasible_eps(g.node_count(), d);
        let ok = red::uniform_splitting_deterministic(&g, eps, d)
            .map(|o| checks::is_uniform_splitting(&g, &o.colors, eps, d))
            .unwrap_or(false);
        t2.row(vec![
            g.node_count().to_string(),
            d.to_string(),
            fnum(eps),
            ok.to_string(),
        ]);
    }

    // baseline: Luby's randomized MIS (measured LOCAL rounds) next to the
    // Lemma 4.2 pipeline on the same graphs
    let mut t3 = Table::new(
        "lem42 — baseline: Luby MIS (measured) vs heavy-node elimination",
        &[
            "n",
            "Δ",
            "luby phases",
            "luby rounds",
            "luby size",
            "lemma 4.2 size",
            "both valid",
        ],
    );
    let base_sweep: &[(usize, usize)] = if quick {
        &[(300, 32)]
    } else {
        &[(300, 32), (1024, 64)]
    };
    for (i, &(n, d)) in base_sweep.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(1500 + i as u64);
        let g = generators::random_regular(n, d, &mut rng).expect("feasible");
        let luby = local_coloring::luby_mis(&g, 77 + i as u64);
        let base = 2 * (log2(n).ceil() as usize);
        let (mis, _, _) = red::mis_via_splitting(&g, base, 5);
        let both = checks::is_mis(&g, &luby.in_mis) && checks::is_mis(&g, &mis);
        t3.row(vec![
            n.to_string(),
            d.to_string(),
            luby.phases.to_string(),
            luby.rounds.to_string(),
            luby.in_mis.iter().filter(|&&x| x).count().to_string(),
            mis.iter().filter(|&&x| x).count().to_string(),
            both.to_string(),
        ]);
    }
    vec![t, t2, t3]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lem41_quick_proper() {
        let tables = exp_lem41(true);
        assert!(!tables[0].render().contains("false"));
    }

    #[test]
    fn lem42_quick_valid() {
        let tables = exp_lem42(true);
        assert!(!tables[0].render().contains("false"));
        assert!(!tables[1].render().contains("false"));
    }
}
