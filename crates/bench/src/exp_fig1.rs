//! `fig1` / `thm210` — Figure 1 and the Section 2.5 lower-bound family.

use crate::table::{fnum, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use splitgraph::{checks, generators, Color};
use splitting_core as core;

/// `fig1` — the Figure 1 pipeline: graph → rank-2 instance → weak
/// splitting → sinkless orientation, on the paper-style 8-node example and
/// larger random families.
pub fn exp_fig1(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "fig1 — Figure 1 / Section 2.5: sinkless orientation from weak splitting",
        &[
            "family",
            "n",
            "δ_G",
            "δ_B",
            "r_B",
            "splitting valid",
            "sinkless",
            "solver",
        ],
    );

    // the 8-node, 6-regular example in the spirit of Figure 1
    let mut fig = generators::complete(8);
    for i in 0..4 {
        fig.remove_edge(2 * i, 2 * i + 1);
    }
    let families: Vec<(String, splitgraph::Graph)> = {
        let mut fams = vec![("figure-1 example (8 nodes)".to_string(), fig)];
        let mut rng = StdRng::seed_from_u64(42);
        let sizes: &[(usize, usize)] = if quick {
            &[(60, 6), (120, 24)]
        } else {
            &[(60, 6), (120, 24), (500, 24), (1000, 30)]
        };
        for &(n, d) in sizes {
            fams.push((
                format!("random {d}-regular"),
                generators::random_regular(n, d, &mut rng).expect("feasible"),
            ));
        }
        fams
    };

    for (name, g) in families {
        let ids: Vec<u64> = (0..g.node_count() as u64).collect();
        let red = core::sinkless_via_weak_splitting(&g, &ids, 9).expect("pipeline succeeds");
        let b = &red.instance.bipartite;
        let solver = if red
            .ledger
            .entries()
            .iter()
            .any(|e| e.label.contains("centralized"))
        {
            "centralized reference (Thm 2.10 regime)"
        } else {
            "Theorem 2.7"
        };
        t.row(vec![
            name,
            g.node_count().to_string(),
            g.min_degree().to_string(),
            b.min_left_degree().to_string(),
            b.rank().to_string(),
            checks::is_weak_splitting(b, &red.splitting, 0).to_string(),
            checks::is_sinkless(&g, &red.orientation, 1).to_string(),
            solver.into(),
        ]);
    }

    // the edge-coloring detail of Figure 1(c)/(d): red = small→large ID
    let mut t2 = Table::new(
        "fig1 — orientation rule detail (red: small→large ID, blue: large→small)",
        &["edge", "color", "direction"],
    );
    let g = generators::cycle(6).expect("cycle");
    // δ_G = 2 < 5: use the raw instance + reference solver to illustrate
    let ids: Vec<u64> = vec![11, 3, 8, 1, 9, 5];
    let inst = generators::sinkless_instance(&g, &ids);
    let sol = core::solve_rank2_reference(&inst.bipartite, 3)
        .map(|o| o.colors)
        .unwrap_or_else(|_| vec![Color::Red; inst.edges.len()]);
    let orient = core::orientation_from_splitting(&inst, &ids, &sol);
    for (i, &(a, b)) in inst.edges.iter().enumerate() {
        let (tail, head) = if orient.forward[i] { (a, b) } else { (b, a) };
        t2.row(vec![
            format!("{{{a}, {b}}} (ids {}, {})", ids[a], ids[b]),
            sol[i].to_string(),
            format!("{} → {}", ids[tail], ids[head]),
        ]);
    }
    vec![t, t2]
}

/// `thm210` — lower-bound consistency: measured rounds of our solvers on
/// the rank-2 family against the `Ω(log_Δ log n)` / `Ω(log_Δ n)` bounds.
pub fn exp_thm210(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "thm210 — Theorem 2.10 / Corollary 2.11: lower bounds on the rank-2 family",
        &[
            "n_B",
            "Δ_B",
            "rand bound log_Δ log n",
            "det bound log_Δ n",
            "our det rounds",
            "consistent",
        ],
    );
    let mut rng = StdRng::seed_from_u64(7);
    let sizes: &[usize] = if quick {
        &[120, 480]
    } else {
        &[120, 480, 1920, 7680]
    };
    for &n in sizes {
        let g = generators::random_regular(n, 24, &mut rng).expect("feasible");
        let ids: Vec<u64> = (0..n as u64).collect();
        let red = core::sinkless_via_weak_splitting(&g, &ids, 5).expect("pipeline succeeds");
        let b = &red.instance.bipartite;
        let nb = b.node_count();
        let delta_b = b.max_left_degree();
        let rand_bound = core::theorem210_randomized_bound(nb, delta_b);
        let det_bound = core::corollary211_deterministic_bound(nb, delta_b);
        let ours = red.ledger.total();
        t.row(vec![
            nb.to_string(),
            delta_b.to_string(),
            fnum(rand_bound),
            fnum(det_bound),
            fnum(ours),
            (ours >= rand_bound.min(det_bound) || ours == 0.0).to_string(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_quick_all_valid() {
        let tables = exp_fig1(true);
        assert_eq!(tables.len(), 2);
        assert!(!tables[0].render().contains("false"));
        assert!(tables[1].row_count() == 6, "six cycle edges");
    }

    #[test]
    fn thm210_quick_has_rows() {
        let tables = exp_thm210(true);
        assert!(tables[0].row_count() >= 2);
    }
}
