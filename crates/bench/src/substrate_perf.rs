//! Substrate microbenchmarks: the seed's pointer-chasing, per-edge-insert
//! graph paths and per-round-allocating executor versus the flat CSR bulk
//! builders and the arena executor.
//!
//! The *before* side of every record is a faithful private replica of the
//! seed implementation (kept here so the speedup stays measurable long after
//! the library has moved on); the *after* side calls the live library code.
//! Results feed `BENCH_substrate.json` so the perf trajectory is tracked
//! from this baseline onward.

use crate::json::esc;
use crate::table::{fnum, Table};
use local_runtime::{run_local, run_local_parallel, LocalRun, NodeContext, NodeProgram, BROADCAST};
use rand::rngs::StdRng;
use rand::SeedableRng;
use splitgraph::{generators, power_graph, Graph};
use std::collections::VecDeque;
use std::time::Instant;

/// One before/after measurement.
#[derive(Debug, Clone)]
pub struct PerfRecord {
    /// Kernel name, e.g. `power_graph_k4`.
    pub name: &'static str,
    /// Node count of the instance.
    pub n: usize,
    /// Edge count of the instance.
    pub m: usize,
    /// Wall time of the seed-replica implementation, nanoseconds.
    pub wall_ns_before: u128,
    /// Wall time of the current implementation, nanoseconds.
    pub wall_ns_after: u128,
    /// Effective thread count of the measured side; `None` for sequential
    /// kernels. Sized from `std::thread::available_parallelism`.
    pub threads: Option<usize>,
}

impl PerfRecord {
    /// `before / after` wall-time ratio.
    pub fn speedup(&self) -> f64 {
        self.wall_ns_before as f64 / self.wall_ns_after.max(1) as f64
    }

    /// True when the parallel side could only run one thread (single-vCPU
    /// host): the record then certifies wall-clock *parity* of the
    /// threaded path, not a speedup, and is labeled as such instead of
    /// being reported as a regression.
    pub fn is_parity_run(&self) -> bool {
        self.threads == Some(1)
    }
}

/// A full substrate benchmark run.
#[derive(Debug, Clone)]
pub struct SubstrateReport {
    /// `"quick"` or `"full"`.
    pub mode: &'static str,
    /// `std::thread::available_parallelism()` of the measuring host.
    pub host_parallelism: usize,
    /// All measurements.
    pub records: Vec<PerfRecord>,
}

impl SubstrateReport {
    /// Serializes the report for `BENCH_substrate.json`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\n  \"bench\": \"substrate\",\n  \"mode\": \"{}\",\n  \"host_parallelism\": {},\n  \"records\": [",
            esc(self.mode),
            self.host_parallelism
        ));
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"n\": {}, \"m\": {}, \"wall_ns_before\": {}, \"wall_ns_after\": {}, \"speedup\": {:.2}",
                esc(r.name),
                r.n,
                r.m,
                r.wall_ns_before,
                r.wall_ns_after,
                r.speedup()
            ));
            if let Some(t) = r.threads {
                out.push_str(&format!(
                    ", \"threads\": {t}, \"parity_run\": {}",
                    r.is_parity_run()
                ));
            }
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Instance sizes for one benchmark tier.
struct Scale {
    mode: &'static str,
    build_sparse: (usize, usize),
    build_dense: (usize, usize),
    power: (usize, usize),
    exec: (usize, usize, usize), // (n, d, rounds)
}

const FULL: Scale = Scale {
    mode: "full",
    build_sparse: (100_000, 4),
    build_dense: (20_000, 64),
    power: (100_000, 4),
    exec: (100_000, 8, 16),
};

const QUICK: Scale = Scale {
    mode: "quick",
    build_sparse: (10_000, 4),
    build_dense: (4_000, 32),
    power: (10_000, 4),
    exec: (10_000, 8, 8),
};

#[cfg(test)]
const TINY: Scale = Scale {
    mode: "tiny",
    build_sparse: (400, 4),
    build_dense: (200, 8),
    power: (300, 4),
    exec: (300, 4, 4),
};

// ---------------------------------------------------------------------------
// seed replicas (the "before" side)
// ---------------------------------------------------------------------------

/// The seed's adjacency representation: one sorted `Vec` per node, built by
/// binary-search-and-insert per edge.
struct SeedGraph {
    adj: Vec<Vec<usize>>,
    edge_count: usize,
}

impl SeedGraph {
    fn new(n: usize) -> SeedGraph {
        SeedGraph {
            adj: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    fn from_edges(n: usize, edges: &[(usize, usize)]) -> SeedGraph {
        let mut g = SeedGraph::new(n);
        for &(u, v) in edges {
            assert!(g.add_edge(u, v), "benchmark edge lists are simple");
        }
        g
    }

    /// The seed `Graph::add_edge`, minus the error plumbing (same validation
    /// branches, same insert cost).
    fn add_edge(&mut self, u: usize, v: usize) -> bool {
        let n = self.adj.len();
        if u >= n || v >= n || u == v {
            return false;
        }
        match self.adj[u].binary_search(&v) {
            Ok(_) => return false,
            Err(pos) => self.adj[u].insert(pos, v),
        }
        let pos = self.adj[v].binary_search(&u).unwrap_err();
        self.adj[v].insert(pos, u);
        self.edge_count += 1;
        true
    }

    fn neighbors(&self, v: usize) -> &[usize] {
        &self.adj[v]
    }
}

/// The seed `power_graph`: depth-bounded BFS per node, output assembled by
/// per-pair sorted inserts.
fn seed_power_graph(g: &Graph, k: usize) -> SeedGraph {
    let n = g.node_count();
    let mut out = SeedGraph::new(n);
    if k == 0 {
        return out;
    }
    let mut dist = vec![usize::MAX; n];
    let mut touched = Vec::new();
    for v in 0..n {
        dist[v] = 0;
        touched.push(v);
        let mut queue = VecDeque::new();
        queue.push_back(v);
        while let Some(x) = queue.pop_front() {
            if dist[x] == k {
                continue;
            }
            for &y in g.neighbors(x) {
                if dist[y] == usize::MAX {
                    dist[y] = dist[x] + 1;
                    touched.push(y);
                    queue.push_back(y);
                }
            }
        }
        for &w in &touched {
            if w > v {
                assert!(out.add_edge(v, w), "power graph edges are simple");
            }
        }
        for &w in &touched {
            dist[w] = usize::MAX;
        }
        touched.clear();
    }
    out
}

/// The seed `run_local`: per-message binary-search port lookup and a fresh
/// `vec![Vec::new(); n]` inbox allocation every round.
fn seed_run_local<P: NodeProgram>(
    g: &Graph,
    ids: &[u64],
    max_rounds: usize,
    make: impl FnMut(&NodeContext) -> P,
) -> LocalRun<P::Output> {
    let n = g.node_count();
    assert_eq!(ids.len(), n, "id vector length mismatch");
    let port_towards = |v: usize, u: usize| -> usize {
        g.neighbors(v)
            .binary_search(&u)
            .expect("port lookup of non-neighbor")
    };
    let contexts: Vec<NodeContext> = (0..n)
        .map(|v| NodeContext {
            node: v,
            id: ids[v],
            degree: g.degree(v),
            n,
        })
        .collect();
    let mut programs: Vec<P> = contexts.iter().map(make).collect();
    let mut messages = 0usize;
    let mut inboxes: Vec<Vec<(usize, P::Msg)>> = vec![Vec::new(); n];
    let deliver = |v: usize,
                   out: Vec<(usize, P::Msg)>,
                   inboxes: &mut Vec<Vec<(usize, P::Msg)>>,
                   messages: &mut usize| {
        for (port, msg) in out {
            if port == BROADCAST {
                for &u in g.neighbors(v) {
                    inboxes[u].push((port_towards(u, v), msg.clone()));
                    *messages += 1;
                }
            } else {
                assert!(port < g.degree(v), "node {v} sent to invalid port {port}");
                let u = g.neighbors(v)[port];
                inboxes[u].push((port_towards(u, v), msg.clone()));
                *messages += 1;
            }
        }
    };
    for v in 0..n {
        let out = programs[v].init(&contexts[v]);
        deliver(v, out, &mut inboxes, &mut messages);
    }
    let mut rounds = 0usize;
    let mut completed = programs.iter().all(NodeProgram::is_done);
    while !completed && rounds < max_rounds {
        let taken: Vec<Vec<(usize, P::Msg)>> = std::mem::replace(&mut inboxes, vec![Vec::new(); n]);
        for (v, inbox) in taken.into_iter().enumerate() {
            if programs[v].is_done() {
                continue;
            }
            let out = programs[v].round(&contexts[v], &inbox);
            deliver(v, out, &mut inboxes, &mut messages);
        }
        rounds += 1;
        completed = programs.iter().all(NodeProgram::is_done);
    }
    LocalRun {
        outputs: programs.iter().map(NodeProgram::output).collect(),
        rounds,
        messages,
        completed,
    }
}

// ---------------------------------------------------------------------------
// workloads
// ---------------------------------------------------------------------------

/// Fixed-round gossip: broadcast a running sum of everything heard. Keeps
/// every node active for exactly `rounds` rounds with one broadcast each.
struct Gossip {
    acc: u64,
    rounds_left: usize,
}

impl NodeProgram for Gossip {
    type Msg = u64;
    type Output = u64;
    fn init(&mut self, ctx: &NodeContext) -> Vec<(usize, u64)> {
        self.acc = ctx.id;
        vec![(BROADCAST, self.acc)]
    }
    fn round(&mut self, _ctx: &NodeContext, inbox: &[(usize, u64)]) -> Vec<(usize, u64)> {
        for &(port, x) in inbox {
            self.acc = self.acc.wrapping_add(x.rotate_left(port as u32));
        }
        self.rounds_left -= 1;
        if self.rounds_left > 0 {
            vec![(BROADCAST, self.acc)]
        } else {
            vec![]
        }
    }
    fn is_done(&self) -> bool {
        self.rounds_left == 0
    }
    fn output(&self) -> u64 {
        self.acc
    }
}

/// Compute-heavy gossip: burns a fixed splitmix chain per received message,
/// modelling node programs with real local work (estimator evaluations,
/// coloring trials). This is the regime the parallel round step targets.
struct HeavyGossip {
    acc: u64,
    rounds_left: usize,
}

impl HeavyGossip {
    const MIX_ITERS: usize = 96;
}

impl NodeProgram for HeavyGossip {
    type Msg = u64;
    type Output = u64;
    fn init(&mut self, ctx: &NodeContext) -> Vec<(usize, u64)> {
        self.acc = ctx.id;
        vec![(BROADCAST, self.acc)]
    }
    fn round(&mut self, _ctx: &NodeContext, inbox: &[(usize, u64)]) -> Vec<(usize, u64)> {
        for &(port, x) in inbox {
            let mut h = x ^ (port as u64);
            for _ in 0..Self::MIX_ITERS {
                h = h.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = h;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                h ^= z >> 31;
            }
            self.acc = self.acc.wrapping_add(h);
        }
        self.rounds_left -= 1;
        if self.rounds_left > 0 {
            vec![(BROADCAST, self.acc)]
        } else {
            vec![]
        }
    }
    fn is_done(&self) -> bool {
        self.rounds_left == 0
    }
    fn output(&self) -> u64 {
        self.acc
    }
}

fn time<T>(f: impl FnOnce() -> T) -> (T, u128) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_nanos())
}

fn run_sized(scale: &Scale) -> (Vec<Table>, SubstrateReport) {
    let mut records = Vec::new();

    // graph construction: checked per-edge insert vs bulk counting sort
    for (name, (n, d), seed) in [
        ("graph_build_sparse", scale.build_sparse, 41u64),
        ("graph_build_dense", scale.build_dense, 42u64),
    ] {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_regular(n, d, &mut rng).expect("feasible");
        let edges: Vec<(usize, usize)> = g.edges().collect();
        // measure the current implementation first, on an unfragmented heap
        let (after_g, wall_after) = time(|| Graph::from_edges_bulk(n, &edges).expect("simple"));
        let (before_g, wall_before) = time(|| SeedGraph::from_edges(n, &edges));
        assert_eq!(before_g.edge_count, after_g.edge_count());
        assert_eq!(before_g.neighbors(0), after_g.neighbors(0));
        records.push(PerfRecord {
            name,
            n,
            m: edges.len(),
            wall_ns_before: wall_before,
            wall_ns_after: wall_after,
            threads: None,
        });
    }

    // power graphs: per-pair sorted insert vs BFS-ball bulk CSR assembly
    {
        let (n, d) = scale.power;
        let mut rng = StdRng::seed_from_u64(43);
        let g = generators::random_regular(n, d, &mut rng).expect("feasible");
        for (name, k) in [("power_graph_k2", 2usize), ("power_graph_k4", 4usize)] {
            let (after_p, wall_after) = time(|| power_graph(&g, k));
            let (before_p, wall_before) = time(|| seed_power_graph(&g, k));
            assert_eq!(before_p.edge_count, after_p.edge_count());
            assert_eq!(before_p.neighbors(n / 2), after_p.neighbors(n / 2));
            records.push(PerfRecord {
                name,
                n,
                m: after_p.edge_count(),
                wall_ns_before: wall_before,
                wall_ns_after: wall_after,
                threads: None,
            });
        }
    }

    // executor rounds: per-round inbox reallocation + port binary search vs
    // double-buffered arenas; plus the opt-in parallel step vs sequential
    {
        let (n, d, rounds) = scale.exec;
        let mut rng = StdRng::seed_from_u64(44);
        let g = generators::random_regular(n, d, &mut rng).expect("feasible");
        let ids: Vec<u64> = (0..n as u64)
            .map(|x| x.wrapping_mul(0x9e3779b97f4a7c15))
            .collect();
        let mk = |_: &NodeContext| Gossip {
            acc: 0,
            rounds_left: rounds,
        };
        let (after_run, wall_after) = time(|| run_local(&g, &ids, 10 * rounds, mk));
        let (before_run, wall_before) = time(|| seed_run_local(&g, &ids, 10 * rounds, mk));
        assert_eq!(before_run.outputs, after_run.outputs);
        assert_eq!(before_run.rounds, after_run.rounds);
        assert_eq!(before_run.messages, after_run.messages);
        records.push(PerfRecord {
            name: "executor_rounds",
            n,
            m: g.edge_count(),
            wall_ns_before: wall_before,
            wall_ns_after: wall_after,
            threads: None,
        });
        // the parallel round step pays off for compute-heavy node programs;
        // baseline it against the same program run sequentially, with the
        // thread count sized to what the host actually exposes (a 1-vCPU
        // container yields a wall-clock parity run, labeled as such)
        let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
        let mk_heavy = |_: &NodeContext| HeavyGossip {
            acc: 0,
            rounds_left: rounds,
        };
        let (heavy_seq, wall_heavy_seq) = time(|| run_local(&g, &ids, 10 * rounds, mk_heavy));
        let (heavy_par, wall_heavy_par) =
            time(|| run_local_parallel(&g, &ids, 10 * rounds, threads, mk_heavy));
        assert_eq!(heavy_par.outputs, heavy_seq.outputs);
        assert_eq!(heavy_par.rounds, heavy_seq.rounds);
        assert_eq!(heavy_par.messages, heavy_seq.messages);
        records.push(PerfRecord {
            name: "executor_heavy_parallel",
            n,
            m: g.edge_count(),
            wall_ns_before: wall_heavy_seq, // sequential arena executor baseline
            wall_ns_after: wall_heavy_par,
            threads: Some(threads),
        });
    }

    let host_parallelism = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut t = Table::new(
        "substrate — seed implementation vs flat CSR core / arena executor",
        &[
            "kernel",
            "n",
            "m",
            "threads",
            "before ms",
            "after ms",
            "speedup",
        ],
    );
    for r in &records {
        t.row(vec![
            r.name.into(),
            r.n.to_string(),
            r.m.to_string(),
            r.threads.map_or("-".into(), |t| t.to_string()),
            fnum(r.wall_ns_before as f64 / 1e6),
            fnum(r.wall_ns_after as f64 / 1e6),
            if r.is_parity_run() {
                "parity".into()
            } else {
                fnum(r.speedup())
            },
        ]);
    }
    (
        vec![t],
        SubstrateReport {
            mode: scale.mode,
            host_parallelism,
            records,
        },
    )
}

/// `substrate` — before/after microbench of graph construction, power
/// graphs, and executor rounds. Returns the printable table and the
/// machine-readable report for `BENCH_substrate.json`.
pub fn run_substrate_perf(quick: bool) -> (Vec<Table>, SubstrateReport) {
    run_sized(if quick { &QUICK } else { &FULL })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_produces_consistent_records() {
        let (tables, report) = run_sized(&TINY);
        assert_eq!(report.records.len(), 6);
        assert_eq!(tables[0].row_count(), 6);
        for r in &report.records {
            assert!(r.wall_ns_before > 0 && r.wall_ns_after > 0, "{}", r.name);
            assert!(r.n > 0 && r.m > 0);
        }
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"substrate\""));
        assert!(json.contains("power_graph_k4"));
        assert!(json.contains("executor_heavy_parallel"));
        assert!(json.contains("\"host_parallelism\""));
        assert!(json.contains("\"threads\""));
        assert!(json.contains("\"parity_run\""));
        let parallel = report
            .records
            .iter()
            .find(|r| r.name == "executor_heavy_parallel")
            .unwrap();
        assert_eq!(parallel.threads, Some(report.host_parallelism));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
