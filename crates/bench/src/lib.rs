//! # splitting-bench — experiment harness
//!
//! One module per experiment family of the reproduction's per-experiment
//! index (DESIGN.md §4); every public `exp_*` function returns printable
//! [`Table`]s with measured quantities next to the paper's predicted
//! bounds. Binaries under `src/bin/` wrap these functions; `run_all`
//! regenerates the entire EXPERIMENTS.md corpus.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod api_perf;
mod churn_perf;
mod exp_ablations;
mod exp_conformance;
mod exp_fig1;
mod exp_section2;
mod exp_section3;
mod exp_section4;
mod exp_section5;
mod exp_substrate;
mod json;
mod pipeline_perf;
mod server_perf;
mod substrate_perf;
mod table;

pub use api_perf::{run_api_perf, ApiRecord, ApiReport};
pub use churn_perf::{run_churn_perf, ChurnRecord, ChurnReport};
pub use exp_ablations::{exp_abl_engine, exp_abl_eps, exp_abl_shatter};
pub use exp_conformance::exp_conformance;
pub use exp_fig1::{exp_fig1, exp_thm210};
pub use exp_section2::{
    exp_lem21, exp_lem22, exp_lem24, exp_lem26, exp_lem29, exp_thm12, exp_thm25, exp_thm27,
};
pub use exp_section3::{exp_thm32, exp_thm33};
pub use exp_section4::{exp_lem41, exp_lem42};
pub use exp_section5::{exp_lem51, exp_thm52};
pub use exp_substrate::{exp_edge_split, exp_runtime};
pub use json::{json_path_flag, tables_to_json};
pub use pipeline_perf::{run_pipeline_perf, PipelineRecord, PipelineReport};
pub use server_perf::{run_server_perf, ServerRecord, ServerReport};
pub use substrate_perf::{run_substrate_perf, PerfRecord, SubstrateReport};
pub use table::{fnum, Table};

/// An experiment runner: takes the `quick` flag, returns result tables.
pub type ExperimentFn = fn(bool) -> Vec<Table>;

/// All experiments in index order, as `(id, runner)` pairs.
pub fn all_experiments() -> Vec<(&'static str, ExperimentFn)> {
    vec![
        ("fig1", exp_fig1 as ExperimentFn),
        ("lem21", exp_lem21),
        ("lem22", exp_lem22),
        ("lem24", exp_lem24),
        ("thm25", exp_thm25),
        ("lem26", exp_lem26),
        ("thm27", exp_thm27),
        ("lem29", exp_lem29),
        ("thm12", exp_thm12),
        ("thm210", exp_thm210),
        ("thm32", exp_thm32),
        ("thm33", exp_thm33),
        ("lem41", exp_lem41),
        ("lem42", exp_lem42),
        ("lem51", exp_lem51),
        ("thm52", exp_thm52),
        ("edge_split", exp_edge_split),
        ("runtime", exp_runtime),
        ("abl_eps", exp_abl_eps),
        ("abl_shatter", exp_abl_shatter),
        ("abl_engine", exp_abl_engine),
        ("conformance", exp_conformance),
    ]
}

/// Standard binary entry point: honors a `--quick` flag.
pub fn run_experiment_main(tables: Vec<Table>) {
    for t in tables {
        t.print();
    }
}

/// Whether `--quick` was passed on the command line.
pub fn quick_flag() -> bool {
    std::env::args().any(|a| a == "--quick")
}
