//! Minimal hand-rolled JSON emission for experiment results (the container
//! has no serde; the shapes here are small and flat enough that manual
//! formatting is clearer than a vendored dependency).

use crate::table::Table;

/// Escapes a string for inclusion in a JSON string literal.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes experiment tables as
/// `{"bench": ..., "mode": ..., "tables": [{"title", "headers", "rows"}]}`.
pub fn tables_to_json(bench: &str, mode: &str, tables: &[Table]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\n  \"bench\": \"{}\",\n  \"mode\": \"{}\",\n  \"tables\": [",
        esc(bench),
        esc(mode)
    ));
    for (i, t) in tables.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\n      \"title\": \"{}\",\n      \"headers\": [{}],\n      \"rows\": [",
            esc(t.title()),
            t.headers()
                .iter()
                .map(|h| format!("\"{}\"", esc(h)))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        for (j, row) in t.rows().iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n        [{}]",
                row.iter()
                    .map(|c| format!("\"{}\"", esc(c)))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        out.push_str("\n      ]\n    }");
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Returns the path following a `--json` command-line flag, if present.
pub fn json_path_flag() -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--json" {
            return args.next();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn tables_serialize_to_valid_shape() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into(), "x\"y".into()]);
        let s = tables_to_json("runtime", "quick", &[t]);
        assert!(s.contains("\"bench\": \"runtime\""));
        assert!(s.contains("\"title\": \"demo\""));
        assert!(s.contains("[\"1\", \"x\\\"y\"]"));
        // crude balance check
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }
}
