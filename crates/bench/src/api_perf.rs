//! Experiment `api` — throughput of the unified request/solution layer:
//! batched `Session::solve_batch` dispatch versus sequential single-call
//! dispatch versus the raw legacy entrypoints.
//!
//! Three quantities per workload:
//!
//! * **legacy** — a hand-written loop over the per-theorem entrypoints
//!   (what callers did before the API existed);
//! * **api seq** — the same work as one `Session::with_threads(1)` solve
//!   per request: measures the boundary's overhead (request validation,
//!   dispatch, certificate verification, provenance assembly);
//! * **api batch** — one `solve_batch` call at each thread count:
//!   measures the scoped-thread fan-out. On a single-vCPU host the
//!   multi-thread rows certify wall-clock *parity*, not speedup (the
//!   batch path is bit-identical to sequential by construction).
//!
//! Results feed `BENCH_api.json`.

use crate::json::esc;
use crate::table::{fnum, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use splitgraph::generators;
use splitting_api::{Problem, Request, Session};
use splitting_core::WeakSplittingSolver;
use splitting_reductions as red;
use std::time::Instant;

/// One workload measurement at one thread count.
#[derive(Debug, Clone)]
pub struct ApiRecord {
    /// Workload name, e.g. `zero_round_batch`.
    pub name: &'static str,
    /// Number of requests in the batch.
    pub requests: usize,
    /// Worker threads of the batch side.
    pub threads: usize,
    /// `std::thread::available_parallelism()` of the measuring host at
    /// the time this row was measured — recorded per row so a reader of
    /// `BENCH_api.json` can tell a genuine batch slowdown from plain
    /// oversubscription without consulting out-of-band context.
    pub host_parallelism: usize,
    /// Wall time of the legacy direct-call loop, nanoseconds.
    pub wall_ns_legacy: u128,
    /// Wall time of sequential single-call API dispatch, nanoseconds.
    pub wall_ns_api_seq: u128,
    /// Wall time of one `solve_batch` call, nanoseconds.
    pub wall_ns_api_batch: u128,
}

impl ApiRecord {
    /// API-boundary overhead: sequential API time over legacy time
    /// (1.0 = free; includes certificate verification the legacy loop
    /// does not perform).
    pub fn overhead(&self) -> f64 {
        self.wall_ns_api_seq as f64 / self.wall_ns_legacy.max(1) as f64
    }

    /// Batch speedup over sequential API dispatch.
    pub fn batch_speedup(&self) -> f64 {
        self.wall_ns_api_seq as f64 / self.wall_ns_api_batch.max(1) as f64
    }

    /// Batched requests per second.
    pub fn throughput_rps(&self) -> f64 {
        self.requests as f64 / (self.wall_ns_api_batch.max(1) as f64 / 1e9)
    }

    /// True when this row ran more worker threads than the host has
    /// cores. Such rows certify wall-clock *parity* (the batch path is
    /// bit-identical to sequential by construction) and their
    /// `batch_speedup` ≤ 1 is scheduling noise, not an API regression.
    pub fn oversubscribed(&self) -> bool {
        self.threads > self.host_parallelism
    }
}

/// A full API benchmark run.
#[derive(Debug, Clone)]
pub struct ApiReport {
    /// `"quick"` or `"full"`.
    pub mode: &'static str,
    /// `std::thread::available_parallelism()` of the measuring host.
    pub host_parallelism: usize,
    /// All measurements.
    pub records: Vec<ApiRecord>,
}

impl ApiReport {
    /// Serializes the report for `BENCH_api.json`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\n  \"bench\": \"api\",\n  \"mode\": \"{}\",\n  \"host_parallelism\": {},\n  \"records\": [",
            esc(self.mode),
            self.host_parallelism
        ));
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"requests\": {}, \"threads\": {}, \
                 \"host_parallelism\": {}, \"oversubscribed\": {}, \
                 \"wall_ns_legacy\": {}, \"wall_ns_api_seq\": {}, \"wall_ns_api_batch\": {}, \
                 \"overhead\": {:.3}, \"batch_speedup\": {:.2}, \"throughput_rps\": {:.1}, \
                 \"parity_run\": {}}}",
                esc(r.name),
                r.requests,
                r.threads,
                r.host_parallelism,
                r.oversubscribed(),
                r.wall_ns_legacy,
                r.wall_ns_api_seq,
                r.wall_ns_api_batch,
                r.overhead(),
                r.batch_speedup(),
                r.throughput_rps(),
                r.threads == 1 || r.oversubscribed()
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// One workload: a request batch plus the matching legacy loop.
struct Workload {
    name: &'static str,
    requests: Vec<Request>,
    legacy: Box<dyn Fn() + Send + Sync>,
}

fn weak_batch(name: &'static str, count: usize, nu: usize, d: usize, randomized: bool) -> Workload {
    let instances: Vec<_> = (0..count)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(0xA110 + i as u64);
            generators::random_biregular(nu, nu, d, &mut rng).expect("feasible")
        })
        .collect();
    let requests = instances
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let r = Request::new(Problem::weak_splitting(), b.clone()).seed(i as u64);
            if randomized {
                r
            } else {
                r.deterministic()
            }
        })
        .collect();
    let legacy = Box::new(move || {
        for (i, b) in instances.iter().enumerate() {
            let solver = WeakSplittingSolver {
                allow_randomized: randomized,
                seed: i as u64,
                thm12_constant: 3.0,
            };
            let (out, _) = solver.solve(b).expect("covered regime");
            std::hint::black_box(out.colors.len());
        }
    });
    Workload {
        name,
        requests,
        legacy,
    }
}

fn mixed_batch(count: usize, n: usize, d: usize) -> Workload {
    let hosts: Vec<_> = (0..count)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(0xB220 + i as u64);
            generators::random_regular(n, d, &mut rng).expect("feasible")
        })
        .collect();
    let requests = hosts
        .iter()
        .enumerate()
        .flat_map(|(i, g)| {
            [
                Request::new(Problem::Mis { base_degree: None }, g.clone()).seed(i as u64),
                Request::new(
                    Problem::EdgeColoring {
                        base_degree: Some(8),
                        engine: red::EdgeSplitEngine::Eulerian,
                    },
                    g.clone(),
                ),
            ]
        })
        .collect();
    let legacy = Box::new(move || {
        for (i, g) in hosts.iter().enumerate() {
            let base = 4 * splitgraph::math::ceil_log2(g.node_count().max(2)) as usize;
            let (mis, _, _) = red::mis_via_splitting(g, base, i as u64);
            std::hint::black_box(mis.len());
            let (colors, _, _) =
                red::edge_coloring_via_splitting(g, 8, red::EdgeSplitEngine::Eulerian)
                    .expect("non-empty");
            std::hint::black_box(colors.len());
        }
    });
    Workload {
        name: "mixed_reductions_batch",
        requests,
        legacy,
    }
}

/// Runs the API benchmark; returns printable tables plus the JSON report.
pub fn run_api_perf(quick: bool) -> (Vec<Table>, ApiReport) {
    let mode = if quick { "quick" } else { "full" };
    let host_parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let (wcount, wsize, wdeg, dcount, mcount, msize) = if quick {
        (16, 60, 16, 6, 3, 64)
    } else {
        (64, 100, 20, 16, 6, 128)
    };
    let workloads = vec![
        // zero-round dispatch: the work per request is tiny, so this is
        // the purest measurement of the boundary's own cost
        weak_batch("zero_round_batch", wcount, wsize, wdeg, true),
        // Theorem 2.5: compute-heavy deterministic requests
        weak_batch("theorem25_batch", dcount, wsize, wdeg, false),
        // Section 4 reductions over host graphs (MIS + edge coloring)
        mixed_batch(mcount, msize, 8.min(msize - 1)),
    ];

    let mut thread_counts = vec![1, 2, 4, host_parallelism];
    thread_counts.sort_unstable();
    thread_counts.dedup();

    let mut records = Vec::new();
    for w in &workloads {
        // warm-up + legacy baseline
        (w.legacy)();
        let t0 = Instant::now();
        (w.legacy)();
        let wall_ns_legacy = t0.elapsed().as_nanos();

        let seq = Session::with_threads(1);
        let t0 = Instant::now();
        for r in &w.requests {
            let s = seq.solve(r).expect("workload requests are solvable");
            std::hint::black_box(s.output.len());
        }
        let wall_ns_api_seq = t0.elapsed().as_nanos();

        for &threads in &thread_counts {
            let session = Session::with_threads(threads);
            let t0 = Instant::now();
            let results = session.solve_batch(&w.requests);
            let wall_ns_api_batch = t0.elapsed().as_nanos();
            assert!(
                results.iter().all(Result::is_ok),
                "batch workload must solve"
            );
            records.push(ApiRecord {
                name: w.name,
                requests: w.requests.len(),
                threads,
                host_parallelism,
                wall_ns_legacy,
                wall_ns_api_seq,
                wall_ns_api_batch,
            });
        }
    }

    let mut table = Table::new(
        format!("api ({mode}): batch dispatch vs sequential vs legacy"),
        &[
            "workload",
            "reqs",
            "threads",
            "legacy ms",
            "api seq ms",
            "api batch ms",
            "overhead",
            "batch speedup",
            "req/s",
        ],
    );
    for r in &records {
        table.row(vec![
            r.name.to_string(),
            r.requests.to_string(),
            r.threads.to_string(),
            fnum(r.wall_ns_legacy as f64 / 1e6),
            fnum(r.wall_ns_api_seq as f64 / 1e6),
            fnum(r.wall_ns_api_batch as f64 / 1e6),
            format!("{:.3}×", r.overhead()),
            format!(
                "{:.2}×{}",
                r.batch_speedup(),
                if r.oversubscribed() { " (oversub)" } else { "" }
            ),
            fnum(r.throughput_rps()),
        ]);
    }
    let report = ApiReport {
        mode,
        host_parallelism,
        records,
    };
    (vec![table], report)
}
