//! Ablation experiments: design choices the paper fixes by fiat
//! (`abl_eps`, `abl_shatter`, `abl_engine`).

use crate::table::{fnum, Table};
use degree_split::{splitting_rounds_deterministic, DegreeSplitter, Engine, Flavor};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use splitgraph::{generators, MultiGraph};
use splitting_core as core;

/// `abl_eps` — DRR-I accuracy sweep: the paper's `ε = 1/k` balances rank
/// decay against charged rounds.
pub fn exp_abl_eps(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "abl_eps — DRR-I accuracy ablation (paper: ε = min{1/k, 1/3})",
        &[
            "ε",
            "k",
            "δ_k",
            "r_k",
            "charged rounds",
            "bound δ_k > ((1-ε)/2)^k·δ-2",
        ],
    );
    let mut rng = StdRng::seed_from_u64(2000);
    let b = generators::random_biregular(
        if quick { 128 } else { 512 },
        if quick { 96 } else { 384 },
        48,
        &mut rng,
    )
    .expect("feasible");
    let k = 3;
    for &eps in &[0.05, 0.1, 1.0 / 3.0, 0.5] {
        let splitter = DegreeSplitter::new(eps, Engine::EulerianOracle, Flavor::Deterministic);
        let red = core::degree_rank_reduction_i(&b, &splitter, k);
        let last = red.trace.last().expect("k iterations");
        t.row(vec![
            fnum(eps),
            k.to_string(),
            last.min_left_degree.to_string(),
            last.rank.to_string(),
            fnum(red.ledger.charged_total()),
            (last.min_left_degree as f64 > last.delta_lower_bound).to_string(),
        ]);
    }
    vec![t]
}

/// `abl_shatter` — shattering color-probability sweep (paper: 1/4 + 1/4).
pub fn exp_abl_shatter(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "abl_shatter — shattering probability ablation (paper: p = 1/4 per color)",
        &[
            "p per color",
            "trials",
            "unsat rate",
            "mean uncolored fraction",
        ],
    );
    let mut rng = StdRng::seed_from_u64(2100);
    let b = generators::random_biregular(128, 256, 24, &mut rng).expect("feasible");
    let trials = if quick { 10 } else { 50 };
    for &p in &[0.1, 0.2, 0.25, 0.35, 0.45] {
        let mut unsat = 0usize;
        let mut uncolored = 0usize;
        for seed in 0..trials {
            let sh = core::shatter_with_probability(&b, seed as u64, p);
            unsat += sh.satisfied.iter().filter(|&&s| !s).count();
            uncolored += sh.colors.iter().filter(|c| c.is_none()).count();
        }
        t.row(vec![
            fnum(p),
            trials.to_string(),
            fnum(unsat as f64 / (128.0 * trials as f64)),
            fnum(uncolored as f64 / (256.0 * trials as f64)),
        ]);
    }
    vec![t]
}

/// `abl_engine` — Eulerian oracle vs distributed walk engine: discrepancy
/// distribution and round accounting.
pub fn exp_abl_engine(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "abl_engine — degree-splitting engines (contract: disc ≤ ε·d + 2)",
        &[
            "engine",
            "ε",
            "max disc",
            "mean disc",
            "contract viol.",
            "rounds",
            "kind",
        ],
    );
    let mut rng = StdRng::seed_from_u64(2200);
    let n = if quick { 60 } else { 200 };
    let m = if quick { 600 } else { 4000 };
    let mut g = MultiGraph::new(n);
    for _ in 0..m {
        let a = rng.random_range(0..n);
        let mut b = rng.random_range(0..n);
        while b == a {
            b = rng.random_range(0..n);
        }
        g.add_edge(a, b);
    }
    for &eps in &[0.25, 1.0 / 16.0] {
        for (engine, name) in [
            (Engine::EulerianOracle, "eulerian oracle"),
            (Engine::Walk, "walk engine"),
        ] {
            let s = DegreeSplitter::new(eps, engine, Flavor::Deterministic);
            let r = s.split(&g, n);
            let discs: Vec<usize> = (0..n).map(|v| r.orientation.discrepancy(&g, v)).collect();
            let max = *discs.iter().max().unwrap_or(&0);
            let mean = discs.iter().sum::<usize>() as f64 / n as f64;
            let violations = s.contract_violations(&g, &r.orientation).len();
            let kind = if r.ledger.charged_total() > 0.0 {
                "charged"
            } else {
                "measured"
            };
            t.row(vec![
                name.into(),
                fnum(eps),
                max.to_string(),
                fnum(mean),
                violations.to_string(),
                fnum(r.ledger.total()),
                kind.into(),
            ]);
        }
    }

    let mut t2 = Table::new(
        "abl_engine — Theorem 2.3 charged formula shape",
        &["ε", "n", "deterministic rounds", "randomized/deterministic"],
    );
    for &eps in &[0.25, 0.0625] {
        for &n in &[1 << 10, 1 << 16] {
            let det = splitting_rounds_deterministic(eps, n);
            let rand = degree_split::splitting_rounds_randomized(eps, n);
            t2.row(vec![fnum(eps), n.to_string(), fnum(det), fnum(rand / det)]);
        }
    }
    vec![t, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abl_eps_oracle_meets_bounds() {
        let tables = exp_abl_eps(true);
        assert!(!tables[0].render().contains("false"));
    }

    #[test]
    fn abl_engine_oracle_has_no_violations() {
        let tables = exp_abl_engine(true);
        let rendered = tables[0].render();
        let oracle_rows: Vec<&str> = rendered
            .lines()
            .filter(|l| l.contains("eulerian"))
            .collect();
        for row in oracle_rows {
            assert!(
                row.contains("| 0 "),
                "oracle must have zero violations: {row}"
            );
        }
    }
}
