//! Experiments for Section 2: the weak-splitting algorithms
//! (`lem21`, `lem22`, `lem24`, `thm25`, `lem26`, `thm27`, `lem29`, `thm12`).

use crate::table::{fnum, Table};
use degree_split::{DegreeSplitter, Engine, Flavor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use splitgraph::math::{ceil_log2, log2};
use splitgraph::{checks, generators, BipartiteGraph};
use splitting_core as core;

fn biregular(u: usize, v: usize, d: usize, seed: u64) -> BipartiteGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    generators::random_biregular(u, v, d, &mut rng).expect("feasible parameters")
}

/// `lem21` — Lemma 2.1: measured+charged rounds vs the `Δ·r` prediction.
pub fn exp_lem21(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "lem21 — Lemma 2.1: deterministic weak splitting in O(Δ·r) rounds (δ ≥ 2·log n)",
        &[
            "|U|",
            "|V|",
            "Δ=δ",
            "r",
            "Δ·r",
            "rounds(total)",
            "rounds/Δr",
            "valid",
        ],
    );
    let sweep: &[(usize, usize, usize)] = if quick {
        &[(100, 100, 18), (200, 100, 18)]
    } else {
        &[
            (100, 100, 18),
            (200, 100, 18),
            (200, 100, 36),
            (400, 100, 36),
            (384, 96, 48),
        ]
    };
    for (i, &(u, v, d)) in sweep.iter().enumerate() {
        let b = biregular(u, v, d, 100 + i as u64);
        let out = core::basic_deterministic(&b, b.node_count()).expect("regime holds");
        let valid = checks::is_weak_splitting(&b, &out.colors, 0);
        let dr = (b.max_left_degree() * b.rank()) as f64;
        t.row(vec![
            u.to_string(),
            v.to_string(),
            d.to_string(),
            b.rank().to_string(),
            fnum(dr),
            fnum(out.ledger.total()),
            fnum(out.ledger.total() / dr),
            valid.to_string(),
        ]);
    }
    vec![t]
}

/// `lem22` — Lemma 2.2: truncation makes rounds scale with `r·log n`, not `Δ·r`.
pub fn exp_lem22(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "lem22 — Lemma 2.2: degree truncation, rounds O(r·log n) independent of Δ",
        &[
            "|U|",
            "|V|",
            "δ=Δ",
            "r",
            "r·log n",
            "rounds(trunc)",
            "rounds(full 2.1)",
            "valid",
        ],
    );
    let sweep: &[(usize, usize, usize)] = if quick {
        &[(96, 192, 32)]
    } else {
        &[(96, 192, 32), (96, 192, 64), (96, 192, 128)]
    };
    for (i, &(u, v, d)) in sweep.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(200 + i as u64);
        let b = generators::random_left_regular(u, v, d, &mut rng).expect("feasible");
        let trunc = core::truncated_deterministic(&b, b.node_count()).expect("regime holds");
        let full = core::basic_deterministic(&b, b.node_count()).expect("regime holds");
        let valid = checks::is_weak_splitting(&b, &trunc.colors, 0);
        let rlogn = b.rank() as f64 * log2(b.node_count());
        t.row(vec![
            u.to_string(),
            v.to_string(),
            d.to_string(),
            b.rank().to_string(),
            fnum(rlogn),
            fnum(trunc.ledger.total()),
            fnum(full.ledger.total()),
            valid.to_string(),
        ]);
    }
    vec![t]
}

/// `lem24` — Lemma 2.4: per-iteration `δ_k`/`r_k` against both bounds.
pub fn exp_lem24(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "lem24 — Lemma 2.4: Degree-Rank Reduction I trace vs bounds (ε = 0.2)",
        &[
            "k",
            "δ_k",
            "bound: ((1-ε)/2)^k·δ-2",
            "r_k",
            "bound: ((1+ε)/2)^k·r+3",
            "ok",
        ],
    );
    let b = biregular(
        if quick { 128 } else { 512 },
        if quick { 96 } else { 384 },
        48,
        300,
    );
    let splitter = DegreeSplitter::new(0.2, Engine::EulerianOracle, Flavor::Deterministic);
    let k = if quick { 3 } else { 5 };
    let red = core::degree_rank_reduction_i(&b, &splitter, k);
    for s in &red.trace {
        let ok = (s.min_left_degree as f64) > s.delta_lower_bound
            && (s.rank as f64) < s.rank_upper_bound;
        t.row(vec![
            s.iteration.to_string(),
            s.min_left_degree.to_string(),
            fnum(s.delta_lower_bound),
            s.rank.to_string(),
            fnum(s.rank_upper_bound),
            ok.to_string(),
        ]);
    }
    vec![t]
}

/// `thm25` — Theorem 2.5: rounds vs the paper's formula across the sweep.
pub fn exp_thm25(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "thm25 — Theorem 2.5: rounds vs r/δ·log²n + log³n·(loglog n)^1.1",
        &[
            "n",
            "δ",
            "r",
            "DRR iters",
            "rounds(total)",
            "paper bound",
            "rounds/bound",
            "valid",
        ],
    );
    // complete bipartite instances put δ deep above 48·log n so DRR-I runs
    let sweep: &[(usize, usize)] = if quick {
        &[(64, 512)]
    } else {
        &[(64, 512), (96, 768), (128, 1024)]
    };
    for &(u, v) in sweep {
        let b = generators::complete_bipartite(u, v);
        let (out, report) = core::theorem25(&b, Flavor::Deterministic).expect("regime holds");
        let valid = checks::is_weak_splitting(&b, &out.colors, 0);
        let bound = core::theorem25_round_bound(b.node_count(), b.min_left_degree(), b.rank());
        t.row(vec![
            b.node_count().to_string(),
            b.min_left_degree().to_string(),
            b.rank().to_string(),
            report.drr_iterations.to_string(),
            fnum(out.ledger.total()),
            fnum(bound),
            fnum(out.ledger.total() / bound),
            valid.to_string(),
        ]);
    }
    // crossover: below 48·log n, Lemma 2.2 runs directly
    let mut t2 = Table::new(
        "thm25 — dispatch crossover at δ vs 48·log n",
        &["n", "δ", "48·log n", "DRR iters"],
    );
    for &(u, v, d) in &[(120usize, 100usize, 20usize), (64, 512, 512)] {
        let b = if d == 512 {
            generators::complete_bipartite(u, v)
        } else {
            biregular(u, v, d, 301)
        };
        let (_, report) = core::theorem25(&b, Flavor::Deterministic).expect("regime holds");
        t2.row(vec![
            b.node_count().to_string(),
            b.min_left_degree().to_string(),
            fnum(48.0 * log2(b.node_count())),
            report.drr_iterations.to_string(),
        ]);
    }
    vec![t, t2]
}

/// `lem26` — Lemma 2.6: DRR-II rank trace reaches exactly 1 at `⌈log r⌉`.
pub fn exp_lem26(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "lem26 — Lemma 2.6: DRR-II rank per iteration (reaches 1 at ⌈log r⌉)",
        &[
            "r₀",
            "⌈log r⌉",
            "rank trace",
            "final rank",
            "min degree trace",
        ],
    );
    // the last row (δ = 12, r = 2) sits in the Theorem 2.7 regime δ ≥ 6r:
    // the min-degree trace stays ≥ 2 as the proof requires
    let sweep: &[(usize, usize, usize)] = if quick {
        &[(60, 40, 18)]
    } else {
        &[(60, 40, 18), (80, 16, 10), (128, 64, 32), (12, 72, 12)]
    };
    for (i, &(u, v, d)) in sweep.iter().enumerate() {
        let b = biregular(u, v, d, 400 + i as u64);
        let eps = 1.0 / (10.0 * b.max_left_degree() as f64);
        let splitter = DegreeSplitter::new(eps, Engine::EulerianOracle, Flavor::Deterministic);
        let k = ceil_log2(b.rank().max(1)) as usize;
        let red = core::degree_rank_reduction_ii(&b, &splitter, k);
        let ranks: Vec<String> = red.trace.iter().map(|s| s.rank.to_string()).collect();
        let degs: Vec<String> = red
            .trace
            .iter()
            .map(|s| s.min_left_degree.to_string())
            .collect();
        t.row(vec![
            b.rank().to_string(),
            k.to_string(),
            ranks.join(" → "),
            red.graph.rank().to_string(),
            degs.join(" → "),
        ]);
    }
    vec![t]
}

/// `thm27` — Theorem 2.7: validity and rounds in the `δ ≥ 6r` regime.
pub fn exp_thm27(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "thm27 — Theorem 2.7: δ ≥ 6r regime, deterministic vs randomized",
        &[
            "n",
            "δ",
            "r",
            "det rounds",
            "rand rounds",
            "det valid",
            "rand valid",
        ],
    );
    let sweep: &[(usize, usize, usize)] = if quick {
        &[(12, 72, 12)]
    } else {
        &[(12, 72, 12), (24, 144, 12), (48, 288, 24)]
    };
    for (i, &(u, v, d)) in sweep.iter().enumerate() {
        let b = biregular(u, v, d, 500 + i as u64);
        let det = core::theorem27(&b, core::Variant::Deterministic).expect("regime holds");
        let rand = core::theorem27(&b, core::Variant::Randomized(7)).expect("regime holds");
        t.row(vec![
            b.node_count().to_string(),
            b.min_left_degree().to_string(),
            b.rank().to_string(),
            fnum(det.ledger.total()),
            fnum(rand.ledger.total()),
            checks::is_weak_splitting(&b, &det.colors, 0).to_string(),
            checks::is_weak_splitting(&b, &rand.colors, 0).to_string(),
        ]);
    }
    vec![t]
}

/// `lem29` — Lemma 2.9: empirical unsatisfied probability decays
/// exponentially in Δ.
pub fn exp_lem29(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "lem29 — Lemma 2.9: Pr[u unsatisfied] after shattering vs Δ (exponential decay)",
        &[
            "Δ=δ",
            "trials",
            "unsat rate",
            "rate/previous",
            "paper bound e^{-ηΔ} shape",
        ],
    );
    let trials = if quick { 20 } else { 100 };
    let degrees: &[usize] = if quick {
        &[8, 16, 32]
    } else {
        &[8, 16, 24, 32, 48]
    };
    let mut prev: Option<f64> = None;
    for (i, &d) in degrees.iter().enumerate() {
        let b = biregular(128, 256, d, 600 + i as u64);
        let mut unsat = 0usize;
        for seed in 0..trials {
            let sh = core::shatter(&b, seed as u64);
            unsat += sh.satisfied.iter().filter(|&&s| !s).count();
        }
        let rate = unsat as f64 / (128.0 * trials as f64);
        let ratio = prev.map(|p| if rate > 0.0 { p / rate } else { f64::INFINITY });
        t.row(vec![
            d.to_string(),
            trials.to_string(),
            fnum(rate),
            ratio.map_or("—".into(), fnum),
            "halving Δ-step multiplies rate".into(),
        ]);
        prev = Some(rate);
    }
    vec![t]
}

/// `thm12` — Theorem 1.2: residual component sizes vs the `poly(r, log n)`
/// bound, rounds, validity.
pub fn exp_thm12(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "thm12 — Theorem 1.2: shattering + per-component Thm 2.5",
        &[
            "n",
            "δ",
            "r",
            "unsat",
            "max comp",
            "bound r⁴log⁶n",
            "rounds",
            "valid",
        ],
    );
    let sweep: &[(usize, usize, usize)] = if quick {
        &[(2048, 8192, 24)]
    } else {
        &[(2048, 8192, 24), (4096, 14336, 28), (8192, 32768, 28)]
    };
    for (i, &(u, v, d)) in sweep.iter().enumerate() {
        let b = biregular(u, v, d, 700 + i as u64);
        let cfg = core::Theorem12Config {
            c_constant: 1.5,
            seed: 900 + i as u64,
            ..Default::default()
        };
        match core::theorem12_with_report(&b, &cfg) {
            Ok((out, report)) => {
                let valid = checks::is_weak_splitting(&b, &out.colors, 0);
                let n = b.node_count() as f64;
                let bound = (b.rank() as f64).powi(4) * n.log2().powi(6);
                t.row(vec![
                    b.node_count().to_string(),
                    b.min_left_degree().to_string(),
                    b.rank().to_string(),
                    report.unsatisfied.to_string(),
                    report.max_component.to_string(),
                    fnum(bound),
                    fnum(out.ledger.total()),
                    valid.to_string(),
                ]);
            }
            Err(e) => t.row(vec![
                b.node_count().to_string(),
                b.min_left_degree().to_string(),
                b.rank().to_string(),
                format!("error: {e}"),
                "—".into(),
                "—".into(),
                "—".into(),
                "false".into(),
            ]),
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lem21_quick_produces_rows() {
        let tables = exp_lem21(true);
        assert_eq!(tables.len(), 1);
        assert!(tables[0].row_count() >= 2);
        assert!(tables[0].render().contains("true"));
    }

    #[test]
    fn lem24_bounds_all_hold() {
        let tables = exp_lem24(true);
        assert!(!tables[0].render().contains("false"));
    }

    #[test]
    fn lem26_reaches_rank_one() {
        let tables = exp_lem26(true);
        let rendered = tables[0].render();
        assert!(rendered.contains("→"));
    }

    #[test]
    fn thm27_quick_valid() {
        let tables = exp_thm27(true);
        assert!(!tables[0].render().contains("false"));
    }
}
