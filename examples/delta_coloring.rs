//! The Lemma 4.1 motivation from the paper's introduction: splitting as a
//! divide-and-conquer tool for `(1+o(1))·Δ` vertex coloring.
//!
//! ```sh
//! cargo run --release -p distributed-splitting --example delta_coloring
//! ```

use distributed_splitting::reductions::delta_coloring_via_splitting;
use distributed_splitting::splitgraph::{checks, generators};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(3);
    let n = 2048;
    let delta = 512;
    let g = generators::random_regular(n, delta, &mut rng).expect("feasible");
    println!("graph: n = {n}, Δ = {delta}");

    let base_degree = 4 * (n as f64).log2().ceil() as usize;
    let (colors, report, ledger) =
        delta_coloring_via_splitting(&g, base_degree, Some(0.35)).expect("feasible accuracy");

    assert!(checks::is_proper_coloring(&g, &colors));
    println!("proper coloring: valid");
    println!("splitting levels: {}", report.levels);
    for (i, eps) in report.eps_per_level.iter().enumerate() {
        println!("  level {i}: ε = {eps:.3}");
    }
    println!("base-case max degree: {}", report.base_degree);
    println!(
        "palette: {} colors = {:.3} × (Δ+1)   [the paper's target: (1+o(1))·Δ]",
        report.palette, report.ratio
    );
    println!("\nround ledger:\n{ledger}");
}
