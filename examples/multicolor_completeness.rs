//! The Section 3 completeness reductions, run forward: a C-weak multicolor
//! splitting is enough to recover a genuine weak splitting (Theorem 3.2),
//! and iterated (C, λ)-multicolor splitting is enough to build the C-weak
//! multicolor splitting in the first place (Theorem 3.3).
//!
//! ```sh
//! cargo run --release -p distributed-splitting --example multicolor_completeness
//! ```

use distributed_splitting::core::{
    weak_multicolor_via_multicolor_splitting, weak_splitting_via_weak_multicolor, Theorem33Config,
};
use distributed_splitting::splitgraph::{checks, generators, math};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(13);
    // constraints of degree 1024 over 2048 variables: comfortably inside
    // Definition 1.3's degree regime for n = 2176
    let b = generators::random_left_regular(128, 2048, 1024, &mut rng).expect("feasible");
    let n = b.node_count();
    println!(
        "instance: |U| = {}, |V| = {}, deg = 1024, n = {n}; Def. 1.3 needs ≥ {} colors",
        b.left_count(),
        b.right_count(),
        math::weak_multicolor_required_colors(n)
    );

    // Theorem 3.2 forward: weak multicolor → weak splitting
    let out = weak_splitting_via_weak_multicolor(&b).expect("regime holds");
    assert!(checks::is_weak_splitting(&b, &out.colors, 0));
    println!("\nTheorem 3.2 reduction: weak splitting recovered and valid");
    println!("{}", out.ledger);

    // Theorem 3.3 forward: iterated (C, λ)-splitting → weak multicolor
    let mut rng = StdRng::seed_from_u64(14);
    let dense = generators::random_left_regular(128, 3072, 1536, &mut rng).expect("feasible");
    let cfg = Theorem33Config {
        c: 16,
        lambda: 0.5,
        alpha: 16.0,
    };
    let (colors, report, _ledger) =
        weak_multicolor_via_multicolor_splitting(&dense, &cfg).expect("regime holds");
    println!("\nTheorem 3.3 reduction on a degree-1536 instance:");
    println!("  iterations: {}", report.iterations);
    println!("  class-fraction decay: {:?}", report.class_fractions);
    println!("  total refined colors C'': {}", report.total_colors);
    let distinct_min = (0..dense.left_count())
        .map(|u| {
            let mut s = std::collections::HashSet::new();
            for &v in dense.left_neighbors(u) {
                s.insert(colors[v]);
            }
            s.len()
        })
        .min()
        .unwrap();
    println!(
        "  min distinct colors per constraint: {distinct_min} (required: {})",
        math::weak_multicolor_required_colors(dense.node_count())
    );
}
