//! Quickstart: build a weak-splitting instance, solve it with the
//! parameter-dispatching solver, inspect the round ledger.
//!
//! ```sh
//! cargo run -p distributed-splitting --example quickstart
//! ```

use distributed_splitting::core::{Pipeline, WeakSplittingSolver};
use distributed_splitting::splitgraph::{checks, generators};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A bipartite constraint/variable instance B = (U ∪ V, E):
    // 200 constraints of degree 20 over 400 variables.
    let mut rng = StdRng::seed_from_u64(42);
    let b =
        generators::random_biregular(200, 400, 20, &mut rng).expect("feasible degree parameters");
    println!(
        "instance: |U| = {}, |V| = {}, δ = {}, Δ = {}, r = {}",
        b.left_count(),
        b.right_count(),
        b.min_left_degree(),
        b.max_left_degree(),
        b.rank()
    );

    // deterministic track (Theorem 2.5 territory)
    let solver = WeakSplittingSolver {
        allow_randomized: false,
        ..Default::default()
    };
    let (out, pipeline) = solver.solve(&b).expect("instance is in a covered regime");
    assert!(matches!(pipeline, Pipeline::Theorem25));
    assert!(checks::is_weak_splitting(&b, &out.colors, 0));
    println!("\ndeterministic pipeline: {pipeline:?}");
    println!("{}", out.ledger);

    // randomized track (zero-round algorithm suffices at this degree)
    let solver = WeakSplittingSolver::default();
    let (out, pipeline) = solver.solve(&b).expect("instance is in a covered regime");
    assert!(checks::is_weak_splitting(&b, &out.colors, 0));
    println!("\nrandomized pipeline: {pipeline:?}");
    println!("{}", out.ledger);

    let reds = out
        .colors
        .iter()
        .filter(|c| **c == distributed_splitting::splitgraph::Color::Red)
        .count();
    println!(
        "\ncolor balance: {reds} red / {} blue",
        out.colors.len() - reds
    );
}
