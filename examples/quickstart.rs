//! Quickstart: build a weak-splitting instance and solve it through the
//! unified request/solution API — one `Request` in, one certified
//! `Solution` out, with the dispatch decision on record.
//!
//! ```sh
//! cargo run -p distributed-splitting --example quickstart
//! ```

use distributed_splitting::api::{Problem, Request, Session};
use distributed_splitting::splitgraph::{generators, Color};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A bipartite constraint/variable instance B = (U ∪ V, E):
    // 200 constraints of degree 20 over 400 variables.
    let mut rng = StdRng::seed_from_u64(42);
    let b =
        generators::random_biregular(200, 400, 20, &mut rng).expect("feasible degree parameters");
    println!(
        "instance: |U| = {}, |V| = {}, δ = {}, Δ = {}, r = {}",
        b.left_count(),
        b.right_count(),
        b.min_left_degree(),
        b.max_left_degree(),
        b.rank()
    );

    let session = Session::new();

    // deterministic track (Theorem 2.5 territory)
    let request = Request::new(Problem::weak_splitting(), b.clone()).deterministic();
    let solution = session.solve(&request).expect("covered regime");
    assert!(solution.certificate.holds());
    println!("\ndeterministic: {}", solution.provenance);
    println!("{}", solution.ledger);

    // randomized track (the zero-round algorithm suffices at this degree)
    let request = Request::new(Problem::weak_splitting(), b).seed(7);
    let solution = session.solve(&request).expect("covered regime");
    assert!(solution.certificate.holds());
    println!("\nrandomized: {}", solution.provenance);
    println!("{}", solution.ledger);

    let colors = solution.output.two_coloring().expect("two-coloring output");
    let reds = colors.iter().filter(|c| **c == Color::Red).count();
    println!("\ncolor balance: {reds} red / {} blue", colors.len() - reds);

    // every solution renders as one JSON line for service logs
    println!("\nlog line: {}", solution.to_json_line());
}
