//! The Figure 1 pipeline: reduce sinkless orientation to weak splitting
//! (Section 2.5 of the paper) and run it end to end.
//!
//! ```sh
//! cargo run -p distributed-splitting --example sinkless_orientation
//! ```

use distributed_splitting::core::sinkless_via_weak_splitting;
use distributed_splitting::splitgraph::{checks, generators};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // the paper's reduction needs δ_G ≥ 5; take a 24-regular graph so the
    // resulting rank-2 instance lands in the Theorem 2.7 regime (δ_B ≥ 12)
    let mut rng = StdRng::seed_from_u64(7);
    let g = generators::random_regular(200, 24, &mut rng).expect("feasible");
    let ids: Vec<u64> = (0..200).collect();

    let reduction = sinkless_via_weak_splitting(&g, &ids, 11).expect("pipeline succeeds");
    let b = &reduction.instance.bipartite;
    println!(
        "built B: |U| = {} (nodes), |V| = {} (edges), δ_B = {}, rank = {}",
        b.left_count(),
        b.right_count(),
        b.min_left_degree(),
        b.rank()
    );
    assert!(checks::is_weak_splitting(b, &reduction.splitting, 0));
    println!("weak splitting: valid");

    assert!(checks::is_sinkless(&g, &reduction.orientation, 1));
    println!("derived orientation: sinkless (every node has an outgoing edge)");

    // show the rule on a few edges: red = small→large ID, blue = the reverse
    println!("\nfirst 8 edges:");
    for (i, &(a, c)) in reduction.instance.edges.iter().take(8).enumerate() {
        let color = reduction.splitting[i];
        let (tail, head) = if reduction.orientation.forward[i] {
            (a, c)
        } else {
            (c, a)
        };
        println!("  {{{a:3}, {c:3}}}  {color:5}  {tail:3} → {head:3}");
    }

    println!("\nround ledger of the solving step:\n{}", reduction.ledger);
    println!(
        "\nTheorem 2.10 context: on rank-2 instances, every LOCAL algorithm needs \
         Ω(log_Δ log n) (rand) / Ω(log_Δ n) (det) rounds — here log_Δ n ≈ {:.1}",
        distributed_splitting::core::corollary211_deterministic_bound(
            b.node_count(),
            b.max_left_degree()
        )
    );
}
