//! Lemma 4.2: maximal independent set by heavy-node elimination.
//!
//! ```sh
//! cargo run --release -p distributed-splitting --example mis_via_splitting
//! ```

use distributed_splitting::reductions::mis_via_splitting;
use distributed_splitting::splitgraph::{checks, generators};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(5);
    let n = 1024;
    let delta = 64;
    let g = generators::random_regular(n, delta, &mut rng).expect("feasible");
    println!("graph: n = {n}, Δ = {delta}");

    let base_degree = 2 * (n as f64).log2().ceil() as usize;
    let (mis, report, ledger) = mis_via_splitting(&g, base_degree, 17);

    assert!(checks::is_mis(&g, &mis));
    let size = mis.iter().filter(|&&x| x).count();
    println!(
        "MIS: valid, {size} nodes (Lemma 4.3 floor: n/(Δ+1) = {})",
        n / (delta + 1)
    );
    println!("degree-halving steps: {}", report.steps);
    println!(
        "heavy-elimination iterations: {}",
        report.elimination_iterations
    );
    println!("splitting oracle calls: {}", report.splittings);
    println!("\nround ledger:\n{ledger}");
}
