//! Lemma 4.2: maximal independent set by heavy-node elimination, driven
//! through the unified API (the MIS reduction is randomized-only — the
//! request layer says so if you ask for the deterministic track).
//!
//! ```sh
//! cargo run --release -p distributed-splitting --example mis_via_splitting
//! ```

use distributed_splitting::api::{Problem, Request, Session};
use distributed_splitting::splitgraph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(5);
    let n = 1024;
    let delta = 64;
    let g = generators::random_regular(n, delta, &mut rng).expect("feasible");
    println!("graph: n = {n}, Δ = {delta}");

    let base_degree = 2 * (n as f64).log2().ceil() as usize;
    let session = Session::new();

    // deterministic requests are rejected with a typed error: Lemma 4.2
    // instantiates its splitting oracle A with randomness (an efficient
    // deterministic A is exactly the paper's open problem)
    let problem = Problem::Mis {
        base_degree: Some(base_degree),
    };
    let rejected = session.solve(&Request::new(problem.clone(), g.clone()).deterministic());
    println!(
        "\ndeterministic track: {}",
        rejected.expect_err("MIS has no deterministic pipeline")
    );

    // the randomized track solves, certifies, and carries provenance
    let solution = session
        .solve(&Request::new(problem, g).seed(17))
        .expect("randomized MIS succeeds");
    assert!(solution.certificate.holds());

    let mis = solution.output.independent_set().expect("node-set output");
    let size = mis.iter().filter(|&&x| x).count();
    println!(
        "\nMIS: certified maximal independent, {size} nodes (Lemma 4.3 floor: n/(Δ+1) = {})",
        n / (delta + 1)
    );
    println!("provenance: {}", solution.provenance);
    println!("\nround ledger:\n{}", solution.ledger);
}
