//! The shattering technique of Theorem 1.2: three LOCAL rounds satisfy
//! almost every constraint, the stragglers form tiny components.
//!
//! ```sh
//! cargo run --release -p distributed-splitting --example shattering_demo
//! ```

use distributed_splitting::core::{shatter, theorem12_with_report, Theorem12Config};
use distributed_splitting::splitgraph::{bipartite_components, checks, generators};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(9);
    // δ = 28 sits just below the zero-round regime (2·log n ≈ 28.3), the
    // interesting territory for shattering
    let b = generators::random_biregular(4096, 14336, 28, &mut rng).expect("feasible");
    println!(
        "instance: |U| = {}, |V| = {}, δ = {}, r = {}, n = {}",
        b.left_count(),
        b.right_count(),
        b.min_left_degree(),
        b.rank(),
        b.node_count()
    );

    // one shattering pass, inspected
    let sh = shatter(&b, 2024);
    let unsat = sh.satisfied.iter().filter(|&&s| !s).count();
    let uncolored = sh.colors.iter().filter(|c| c.is_none()).count();
    println!("\nafter {} LOCAL rounds of shattering:", sh.rounds);
    println!("  unsatisfied constraints: {unsat} / {}", b.left_count());
    println!(
        "  uncolored variables:     {uncolored} / {}",
        b.right_count()
    );
    let comps = bipartite_components(&sh.residual);
    let sizes: Vec<usize> = comps
        .iter()
        .filter(|c| (0..c.graph.left_count()).any(|u| c.graph.left_degree(u) > 0))
        .map(|c| c.node_count())
        .collect();
    println!(
        "  residual components:     {} (largest: {} nodes)",
        sizes.len(),
        sizes.iter().max().copied().unwrap_or(0)
    );

    // the full Theorem 1.2 pipeline
    let cfg = Theorem12Config {
        c_constant: 1.5,
        seed: 2024,
        ..Default::default()
    };
    let (out, report) = theorem12_with_report(&b, &cfg).expect("pipeline succeeds");
    assert!(checks::is_weak_splitting(&b, &out.colors, 0));
    println!("\nTheorem 1.2 pipeline: valid weak splitting");
    println!(
        "  components solved deterministically: {}",
        report.solved_components
    );
    println!("  shattering attempts used: {}", report.attempts_used);
    println!("\nround ledger:\n{}", out.ledger);
}
