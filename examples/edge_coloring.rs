//! The introduction's success story (§1.1): edge splitting unlocks
//! `2Δ(1+o(1))` edge coloring ([GS17], [GHK+17b]) — here requested
//! through the unified API, once per engine, as one batch.
//!
//! ```sh
//! cargo run --release -p distributed-splitting --example edge_coloring
//! ```

use distributed_splitting::api::{Problem, Request, Session};
use distributed_splitting::reductions::EdgeSplitEngine;
use distributed_splitting::splitgraph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(21);
    let n = 256;
    let delta = 64;
    let g = generators::random_regular(n, delta, &mut rng).expect("feasible");
    println!("graph: n = {n}, Δ = {delta}, m = {}", g.edge_count());

    // both engines as one batch: the session fans the requests out over
    // scoped worker threads and returns results in request order
    let engines = [EdgeSplitEngine::Eulerian, EdgeSplitEngine::Walk];
    let requests: Vec<Request> = engines
        .iter()
        .map(|&engine| {
            Request::new(
                Problem::EdgeColoring {
                    base_degree: Some(8),
                    engine,
                },
                g.clone(),
            )
        })
        .collect();
    let results = Session::new().solve_batch(&requests);

    for (engine, result) in engines.iter().zip(results) {
        let solution = result.expect("non-empty graph");
        assert!(solution.certificate.holds());
        let (_, palette) = solution.output.multi_coloring().expect("edge colors");
        println!("\nengine {engine:?}:");
        println!("  {}", solution.provenance);
        println!(
            "  palette: {palette} colors = {:.3} × 2Δ   [GS17 target: 2Δ(1+o(1))]",
            f64::from(palette) / (2.0 * delta as f64)
        );
        println!(
            "  rounds: {:.1} measured + {:.1} charged",
            solution.ledger.measured_total(),
            solution.ledger.charged_total()
        );
    }
}
