//! The introduction's success story (§1.1): edge splitting unlocks
//! `2Δ(1+o(1))` edge coloring ([GS17], [GHK+17b]).
//!
//! ```sh
//! cargo run --release -p distributed-splitting --example edge_coloring
//! ```

use distributed_splitting::reductions::{edge_coloring_via_splitting, EdgeSplitEngine};
use distributed_splitting::splitgraph::{checks, generators};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(21);
    let n = 256;
    let delta = 64;
    let g = generators::random_regular(n, delta, &mut rng).expect("feasible");
    println!("graph: n = {n}, Δ = {delta}, m = {}", g.edge_count());

    for engine in [EdgeSplitEngine::Eulerian, EdgeSplitEngine::Walk] {
        let (colors, report, ledger) =
            edge_coloring_via_splitting(&g, 8, engine).expect("non-empty graph");
        assert!(checks::is_proper_edge_coloring(&g, &colors));
        println!("\nengine {engine:?}:");
        println!("  splitting levels: {}", report.levels);
        println!("  per-class degree at base: {}", report.base_degree);
        println!(
            "  palette: {} colors = {:.3} × 2Δ   [GS17 target: 2Δ(1+o(1))]",
            report.palette, report.ratio
        );
        println!(
            "  rounds: {:.1} measured + {:.1} charged",
            ledger.measured_total(),
            ledger.charged_total()
        );
    }
}
