//! # distributed-splitting
//!
//! A comprehensive reproduction of *"On the Complexity of Distributed
//! Splitting Problems"* (Bamberger, Ghaffari, Kuhn, Maus, Uitto;
//! PODC 2019) as a Rust workspace. This facade crate re-exports the
//! member crates:
//!
//! * [`splitgraph`] — graphs, bipartite constraint/variable instances,
//!   generators, validity checkers;
//! * [`local_runtime`] — LOCAL and SLOCAL model simulators with round
//!   ledgers;
//! * [`local_coloring`] — Linial coloring, color reduction, Cole–Vishkin;
//! * [`degree_split`] — the Theorem 2.3 directed degree-splitting substrate;
//! * [`derand`] — pessimistic estimators and the conditional-expectation
//!   fixers;
//! * [`core`] (`splitting-core`) — every algorithm of the paper;
//! * [`reductions`] (`splitting-reductions`) — Section 4 pipelines.
//!
//! # Quickstart
//!
//! ```
//! use distributed_splitting::core::{theorem25, SplitOutcome};
//! use distributed_splitting::splitgraph::{checks, generators};
//! use degree_split::Flavor;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let b = generators::random_biregular(100, 100, 20, &mut rng).unwrap();
//! let (out, _report): (SplitOutcome, _) = theorem25(&b, Flavor::Deterministic).unwrap();
//! assert!(checks::is_weak_splitting(&b, &out.colors, 0));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use degree_split;
pub use derand;
pub use local_coloring;
pub use local_runtime;
pub use splitgraph;
pub use splitting_core as core;
pub use splitting_reductions as reductions;
