//! # distributed-splitting
//!
//! A comprehensive reproduction of *"On the Complexity of Distributed
//! Splitting Problems"* (Bamberger, Ghaffari, Kuhn, Maus, Uitto;
//! PODC 2019) as a Rust workspace. This facade crate re-exports the
//! member crates:
//!
//! * [`splitgraph`] — graphs, bipartite constraint/variable instances,
//!   generators, validity checkers;
//! * [`local_runtime`] — LOCAL and SLOCAL model simulators with round
//!   ledgers;
//! * [`local_coloring`] — Linial coloring, color reduction, Cole–Vishkin;
//! * [`degree_split`] — the Theorem 2.3 directed degree-splitting substrate;
//! * [`derand`] — pessimistic estimators and the conditional-expectation
//!   fixers;
//! * [`core`] (`splitting-core`) — every algorithm of the paper;
//! * [`reductions`] (`splitting-reductions`) — Section 4 pipelines;
//! * [`api`] (`splitting-api`) — the unified request/solution layer: one
//!   typed door to every workload above, with batch sessions and
//!   provenance-carrying certificates.
//!
//! # Quickstart
//!
//! Everything the paper solves goes through one `Request` → `Session` →
//! `Solution` lifecycle (the per-theorem entrypoints remain available in
//! [`core`] and [`reductions`] for direct use):
//!
//! ```
//! use distributed_splitting::api::{Problem, Request, Session};
//! use distributed_splitting::splitgraph::generators;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let b = generators::random_biregular(100, 100, 20, &mut rng).unwrap();
//! let solution = Session::new()
//!     .solve(&Request::new(Problem::weak_splitting(), b).deterministic())
//!     .unwrap();
//! // the certificate re-ran splitgraph::checks before the solution was
//! // returned; provenance records the dispatched pipeline and why
//! assert!(solution.certificate.holds());
//! assert_eq!(solution.provenance.route, "theorem25");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use degree_split;
pub use derand;
pub use local_coloring;
pub use local_runtime;
pub use splitgraph;
pub use splitting_api as api;
pub use splitting_core as core;
pub use splitting_reductions as reductions;
