//! Collection strategies.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Strategy for `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: core::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.size.is_empty() {
            self.size.start
        } else {
            rng.random_range(self.size.clone())
        };
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
