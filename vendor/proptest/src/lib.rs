//! Offline vendored subset of the `proptest` property-testing crate.
//!
//! Implements the API surface this workspace's property tests use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header;
//! * [`strategy::Strategy`] with `prop_map`, implemented for integer
//!   ranges, tuples of strategies (arity 2–4), and
//!   [`collection::vec`];
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`], and
//!   [`prop_assume!`].
//!
//! Unlike real proptest there is no shrinking: generation is fully
//! deterministic (a fixed master seed drives every case), so a failing
//! case is reproducible by rerunning the test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Asserts a property holds, with an optional formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts two expressions are equal, with an optional formatted message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Asserts two expressions are unequal, with an optional formatted message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Declares property tests. Each `fn name(pat in strategy) { body }`
/// item expands to a `#[test]` that runs `body` against
/// `ProptestConfig::cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($items:tt)*) => {
        $crate::__proptest_items! { ($config); $($items)* }
    };
    ($($items:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($items)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr);) => {};
    (($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($pat:pat in $strategy:expr) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($config);
            runner.run(&$strategy, |$pat| $body);
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
}
