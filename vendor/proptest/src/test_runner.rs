//! Deterministic property-test runner.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Master seed for every property test; fixed so CI runs are
/// reproducible. Individual cases decorrelate via SplitMix64 in
/// `StdRng::seed_from_u64`.
const MASTER_SEED: u64 = 0x5eed_0fd1_5717_b7b7;

/// Executes a property against a stream of generated inputs.
#[derive(Debug, Clone)]
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// Creates a runner with the given configuration.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Runs `property` on `config.cases` values drawn from `strategy`.
    /// A failing case panics (via the `prop_assert*` macros) with the
    /// case index recoverable from the deterministic seed schedule.
    pub fn run<S: Strategy, F: FnMut(S::Value)>(&mut self, strategy: &S, mut property: F) {
        for case in 0..self.config.cases {
            let mut rng = StdRng::seed_from_u64(MASTER_SEED ^ u64::from(case));
            let value = strategy.new_value(&mut rng);
            property(value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;

    #[test]
    fn runner_honors_case_count() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(17));
        let mut seen = 0u32;
        runner.run(&(0usize..10), |x| {
            assert!(x < 10);
            seen += 1;
        });
        assert_eq!(seen, 17);
    }

    #[test]
    fn generation_is_deterministic_across_runs() {
        let collect = || {
            let mut out = Vec::new();
            let mut runner = TestRunner::new(ProptestConfig::with_cases(8));
            runner.run(&(0u64..1000, 5usize..50).prop_map(|(a, b)| (a, b)), |v| {
                out.push(v)
            });
            out
        };
        assert_eq!(collect(), collect());
    }
}
