//! Value-generation strategies.

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating test inputs.
///
/// Strategies are deterministic functions of the runner's RNG stream;
/// there is no shrinking in this vendored subset.
pub trait Strategy {
    /// Type of the generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn new_value(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<i64> {
    type Value = i64;

    fn new_value(&self, rng: &mut StdRng) -> i64 {
        rng.random_range(self.clone())
    }
}

/// A strategy that always yields clones of one value, mirroring
/// `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}
