//! Offline vendored subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements exactly the random-number API surface the workspace uses:
//!
//! * [`RngCore`] / [`SeedableRng`] core traits;
//! * [`Rng`] (re-exported as [`RngExt`]) with `random`, `random_range`,
//!   `random_bool`;
//! * [`rngs::StdRng`], a deterministic ChaCha12-backed generator seeded
//!   via `seed_from_u64` (SplitMix64 key expansion);
//! * [`seq::SliceRandom`] with Fisher–Yates `shuffle` and `choose`.
//!
//! Streams are fully deterministic for a given seed, which is exactly
//! what the reproduction needs: every experiment and test derives its
//! randomness from explicit seeds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chacha;
pub mod rngs;
pub mod seq;

/// Low-level source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Returns the next 64 random bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits of the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    // Forward the defaulted methods too, so a `&mut R` consumes the
    // identical stream as `R` itself (exact reproducibility matters here).
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it into a full seed
    /// with SplitMix64 so nearby integer seeds give unrelated streams.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: the standard seed expander (Steele, Lea & Flood).
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(state: u64) -> Self {
        SplitMix64 { state }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be sampled uniformly from a generator's raw stream.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::random_range`] accepts.
pub trait SampleRange {
    /// Element type produced by the range.
    type Output;

    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift maps the 64-bit stream onto [0, span).
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + draw as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u128 + 1;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as u64;
                lo + draw as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(draw as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i32, i64, isize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`]. Also importable as [`RngExt`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub use Rng as RngExt;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn random_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
        }
        let lo = rng.random_range(0usize..1);
        assert_eq!(lo, 0);
    }

    #[test]
    fn random_range_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn unit_f64_is_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
