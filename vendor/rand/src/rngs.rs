//! Concrete generator types.

use crate::chacha::ChaCha12Rng;
use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: ChaCha with 12
/// rounds, mirroring upstream `rand`'s `StdRng`. Always seeded
/// explicitly — there is no entropy source in this offline build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    inner: ChaCha12Rng,
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        StdRng {
            inner: ChaCha12Rng::from_seed(seed),
        }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
