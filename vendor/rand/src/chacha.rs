//! ChaCha stream ciphers used as deterministic random-number generators.
//!
//! This is the reference ChaCha block function (Bernstein) with a 64-bit
//! block counter, exposed at 8, 12, and 20 rounds. [`crate::rngs::StdRng`]
//! wraps the 12-round variant, mirroring upstream `rand`.

use crate::{RngCore, SeedableRng};

/// Generic ChaCha generator over `R` double-round iterations
/// (`R = 4` → ChaCha8, `R = 6` → ChaCha12, `R = 10` → ChaCha20).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaChaRng<const R: usize> {
    /// Key + constant + counter state fed to the block function.
    state: [u32; 16],
    /// Current 16-word keystream block.
    block: [u32; 16],
    /// Next unread word index in `block`; 16 means "refill".
    cursor: usize,
}

/// 8-round ChaCha generator.
pub type ChaCha8Rng = ChaChaRng<4>;
/// 12-round ChaCha generator (the `StdRng` core).
pub type ChaCha12Rng = ChaChaRng<6>;
/// 20-round ChaCha generator.
pub type ChaCha20Rng = ChaChaRng<10>;

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl<const R: usize> ChaChaRng<R> {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..R {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for ((out, &mixed), &input) in self
            .block
            .iter_mut()
            .zip(working.iter())
            .zip(self.state.iter())
        {
            *out = mixed.wrapping_add(input);
        }
        // 64-bit little-endian block counter in words 12–13.
        let counter = ((self.state[13] as u64) << 32 | self.state[12] as u64).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }
}

impl<const R: usize> SeedableRng for ChaChaRng<R> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (word, chunk) in state[4..12].iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        // Counter (12–13) and stream/nonce (14–15) start at zero.
        ChaChaRng {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl<const R: usize> RngCore for ChaChaRng<R> {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chacha20_matches_rfc7539_first_block() {
        // RFC 7539 §2.3.2 test vector, adapted to an all-zero nonce and
        // counter: with the zero key the first keystream block is the
        // well-known ChaCha20 zero-input vector.
        let mut rng = ChaCha20Rng::from_seed([0u8; 32]);
        let first = rng.next_u32();
        assert_eq!(first, 0xade0_b876);
    }

    #[test]
    fn distinct_seeds_give_distinct_streams() {
        let mut a = ChaCha12Rng::seed_from_u64(1);
        let mut b = ChaCha12Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn stream_continues_across_blocks() {
        let mut rng = ChaCha12Rng::seed_from_u64(9);
        let first: Vec<u64> = (0..40).map(|_| rng.next_u64()).collect();
        let mut again = ChaCha12Rng::seed_from_u64(9);
        let second: Vec<u64> = (0..40).map(|_| again.next_u64()).collect();
        assert_eq!(first, second);
        // 40 u64 words cross the 16-word block boundary several times.
        assert!(first.windows(2).any(|w| w[0] != w[1]));
    }
}
