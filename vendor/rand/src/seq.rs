//! Sequence helpers: uniform shuffling and element choice.

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly chosen element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::SliceRandom;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }

    #[test]
    fn choose_handles_empty_and_unit_slices() {
        let mut rng = StdRng::seed_from_u64(12);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert_eq!([42u8].choose(&mut rng), Some(&42));
    }
}
