//! Offline vendored subset of the `criterion` benchmarking crate.
//!
//! Implements the surface the workspace's benches use — [`Criterion`]
//! with `sample_size` / `measurement_time` / `warm_up_time` /
//! `bench_function`, [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — with a simple mean/min/max wall-clock
//! measurement instead of criterion's statistical machinery.
//!
//! Bench binaries built from this crate understand `--test` (run each
//! benchmark body once, used by `cargo test --benches`) and otherwise
//! run a timed sampling loop and print one line per benchmark.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver; collects samples and prints a summary line.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the time budget for the measurement phase.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Sets the time budget for the warm-up phase.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Runs one benchmark. `f` receives a [`Bencher`] and is expected
    /// to call [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            budget: self.measurement_time,
            warm_up: self.warm_up_time,
            sample_size: self.sample_size,
            test_mode: self.test_mode,
        };
        f(&mut bencher);
        if self.test_mode {
            println!("test bench {id} ... ok");
            return self;
        }
        let samples = &bencher.samples;
        if samples.is_empty() {
            println!("{id:<50} (no samples)");
            return self;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        println!(
            "{id:<50} time: [{:>10.3?} {:>10.3?} {:>10.3?}]  ({} samples)",
            min,
            mean,
            max,
            samples.len()
        );
        self
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
    warm_up: Duration,
    sample_size: usize,
    test_mode: bool,
}

impl Bencher {
    /// Measures `routine` repeatedly: one warm-up pass, then up to
    /// `sample_size` timed samples or until the measurement budget is
    /// exhausted, whichever comes first.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
        }
        let run_start = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
            if run_start.elapsed() > self.budget {
                break;
            }
        }
    }
}

/// Declares a benchmark group: either
/// `criterion_group!(name, target_a, target_b)` or the long form with
/// `name = …; config = …; targets = …`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        c.test_mode = false;
        let mut runs = 0u64;
        c.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert!(runs >= 5, "warm-up plus five samples, got {runs}");
    }

    #[test]
    fn test_mode_runs_each_routine_once() {
        let mut c = Criterion::default().sample_size(50);
        c.test_mode = true;
        let mut runs = 0u64;
        c.bench_function("single", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }
}
