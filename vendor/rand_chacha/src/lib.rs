//! Offline vendored stand-in for the `rand_chacha` crate.
//!
//! The ChaCha generators live in the vendored [`rand`] crate (they back
//! its `StdRng`); this crate re-exports them under the upstream
//! `rand_chacha` names so code written against the real crate compiles
//! unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rand::chacha::{ChaCha12Rng, ChaCha20Rng, ChaCha8Rng, ChaChaRng};

#[cfg(test)]
mod tests {
    use super::ChaCha20Rng;
    use rand::{RngCore, SeedableRng};

    #[test]
    fn chacha20_is_seedable_through_the_reexport() {
        let mut a = ChaCha20Rng::seed_from_u64(5);
        let mut b = ChaCha20Rng::seed_from_u64(5);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
